//! `adopt_sim` — the closed adoption loop, end to end.
//!
//! Stands up an [`AdoptionLoop`] over the paper's §5 market — one
//! resident market per cohort in a [`ShardedServer`], one
//! structure-of-arrays user population per cohort — and drives the
//! closed tick: lock-free externality read → simulate one adoption
//! tick over the owned blocks → in-place `Axis::Mu` (and, on the
//! demand cadence, demand/`Axis::Profitability`) writes → warm
//! re-solve.
//!
//! Everything on **stdout** is deterministic: the trajectory is a pure
//! function of the printed configuration, bit-identical across reruns,
//! thread counts, chunk sizes and shard counts (the SoA engine splits
//! its counter-mode streams per user, not per thread). Thread/shard
//! choice and wall-clock timing go to **stderr**, so
//! `adopt_sim ... > a.txt` diffs byte-for-byte against a rerun — or a
//! rerun at `--threads 4` — with plain `cmp` (the CI smoke does
//! exactly that).
//!
//! With `--cold` the loop cools every market before each tick
//! (dropping warm seeds, tangent seed, fingerprint cache and the
//! published snapshot), forcing every re-solve cold — the benchmark
//! control for the warm-vs-cold headline. The trajectory checksum is
//! unchanged by `--cold`; only the source tallies and the timing move.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin adopt_sim [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--ticks T`         closed-loop ticks to run (default 10)
//!   `--users N`         users per cohort (default 100000)
//!   `--cohorts C`       adoption cohorts = resident markets (default 1)
//!   `--chunk K`         users per SoA block (default 16384)
//!   `--threads W`       block fan-out threads, 1 = serial (default 1)
//!   `--shards S`        worker shards of the server (default 1)
//!   `--seed S`          master seed (default 7)
//!   `--gamma G`         externality strength in `gain = 1 + γ·θ` (default 0.5)
//!   `--eta E`           load sensitivity in `µ = µ_base/(1+η·load)` (default 0.3)
//!   `--demand-every D`  demand write-back cadence in ticks, 0 = off (default 0)
//!   `--cold`            cool every market before each tick
//!
//! Bad arguments exit with a one-line usage error on stderr (code 2).
//!
//! [`AdoptionLoop`]: subcomp_exp::adoption::AdoptionLoop
//! [`ShardedServer`]: subcomp_exp::server::ShardedServer

use std::time::Instant;
use subcomp_exp::adoption::{AdoptionLoop, LoopConfig};
use subcomp_exp::scenarios::section5_specs;

#[derive(Debug)]
struct Args {
    ticks: u64,
    users: usize,
    cohorts: usize,
    chunk: usize,
    threads: usize,
    shards: usize,
    seed: u64,
    gamma: f64,
    eta: f64,
    demand_every: u64,
    cold: bool,
}

/// Parses and validates the flag list; every rejection is a one-line
/// message for the usage-error path, nothing panics.
fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        ticks: 10,
        users: 100_000,
        cohorts: 1,
        chunk: 16_384,
        threads: 1,
        shards: 1,
        seed: 7,
        gamma: 0.5,
        eta: 0.3,
        demand_every: 0,
        cold: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let positive = |what: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(0) => Err(format!("{what} must be at least 1 (got 0)")),
                Ok(v) => Ok(v),
                Err(_) => Err(format!("{what}: expected a positive integer, got {raw:?}")),
            }
        };
        let nonneg = |what: &str, raw: String| -> Result<f64, String> {
            match raw.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
                Ok(v) => Err(format!("{what} must be finite and ≥ 0 (got {v})")),
                Err(_) => Err(format!("{what}: expected a number, got {raw:?}")),
            }
        };
        match flag.as_str() {
            "--ticks" => args.ticks = positive("--ticks", take("--ticks")?)? as u64,
            "--users" => args.users = positive("--users", take("--users")?)?,
            "--cohorts" => args.cohorts = positive("--cohorts", take("--cohorts")?)?,
            "--chunk" => args.chunk = positive("--chunk", take("--chunk")?)?,
            "--threads" => args.threads = positive("--threads", take("--threads")?)?,
            "--shards" => args.shards = positive("--shards", take("--shards")?)?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--gamma" => args.gamma = nonneg("--gamma", take("--gamma")?)?,
            "--eta" => args.eta = nonneg("--eta", take("--eta")?)?,
            "--demand-every" => {
                args.demand_every = take("--demand-every")?
                    .parse()
                    .map_err(|_| "--demand-every: expected a non-negative integer".to_string())?;
            }
            "--cold" => args.cold = true,
            other => return Err(format!("unknown flag {other} (see the module docs)")),
        }
    }
    Ok(args)
}

fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("adopt_sim: {msg}");
            std::process::exit(2);
        }
    }
}

/// FNV-1a over one 64-bit word — the same fold [`AdoptionLoop::run`]
/// uses, replicated here so the `--cold` tick-by-tick drive reports the
/// identical trajectory checksum.
fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for byte in word.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn main() {
    let args = parse_args();
    println!("adopt_sim: closed adoption loop over the sharded equilibrium service");
    // The stdout config line names only trajectory-determining knobs:
    // threads and shards are performance choices and live on stderr so
    // the report diffs cleanly across them.
    println!(
        "config: ticks={} users={}/cohort cohorts={} chunk={} seed={} gamma={} eta={} \
         demand-every={} mode={}",
        args.ticks,
        args.users,
        args.cohorts,
        args.chunk,
        args.seed,
        args.gamma,
        args.eta,
        args.demand_every,
        if args.cold { "cold" } else { "warm" }
    );
    eprintln!("adopt_sim: threads={} shards={}", args.threads, args.shards);

    let cfg = LoopConfig {
        seed: args.seed,
        cohorts: args.cohorts,
        users: args.users,
        chunk: args.chunk,
        threads: args.threads,
        gamma: args.gamma,
        eta: args.eta,
        demand_every: args.demand_every,
        shards: args.shards,
        ..Default::default()
    };
    let specs = section5_specs();
    let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).unwrap_or_else(|e| {
        eprintln!("adopt_sim: {e}");
        std::process::exit(2);
    });

    let mut checksum = 0xCBF2_9CE4_8422_2325u64;
    let mut last = None;
    let start = Instant::now();
    for _ in 0..args.ticks {
        if args.cold {
            lp.cool().unwrap_or_else(|e| {
                eprintln!("adopt_sim: cool failed: {e}");
                std::process::exit(1);
            });
        }
        let summary = lp.tick().unwrap_or_else(|e| {
            eprintln!("adopt_sim: tick failed: {e}");
            std::process::exit(1);
        });
        checksum = fnv_fold(checksum, summary.tick);
        checksum = fnv_fold(checksum, summary.adopted);
        checksum = fnv_fold(checksum, summary.mass.to_bits());
        last = Some(summary);
    }
    let elapsed = start.elapsed();

    let last = last.expect("--ticks is validated positive");
    let total_users = (args.users * args.cohorts) as u64;
    println!(
        "final: {} of {} users adopted ({:.4} fraction), mass {:.6}",
        last.adopted,
        total_users,
        last.adopted as f64 / total_users as f64,
        last.mass
    );
    let masses: Vec<String> = lp.cohort_masses(0).iter().map(|m| format!("{m:.6}")).collect();
    println!("cohort 0 masses: [{}]", masses.join(", "));
    let s = lp.sources();
    println!(
        "answer sources: {} lock-free, {} cache-hit, {} tangent, {} warm, {} cold, {} partial",
        s.lockfree, s.cache, s.tangent, s.warm, s.cold, s.partial
    );
    println!("trajectory checksum: {checksum:016x}");
    let stepped = args.ticks * total_users;
    eprintln!(
        "timing (non-deterministic): {:.3}s wall, {:.0} users-stepped/s over {} ticks",
        elapsed.as_secs_f64(),
        stepped as f64 / elapsed.as_secs_f64().max(1e-9),
        args.ticks
    );
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(flags: &[&str]) -> Result<super::Args, String> {
        parse_args_from(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bad_arguments_are_usage_errors_not_panics() {
        assert!(parse(&["--ticks", "0"]).is_err());
        assert!(parse(&["--users", "0"]).is_err());
        assert!(parse(&["--cohorts", "0"]).is_err());
        assert!(parse(&["--chunk", "0"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--gamma", "-1"]).is_err());
        assert!(parse(&["--eta", "nan"]).is_err());
        assert!(parse(&["--demand-every", "-1"]).is_err());
        assert!(parse(&["--users"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
        for bad in [parse(&["--ticks", "0"]).unwrap_err(), parse(&["--eta", "nan"]).unwrap_err()] {
            assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        }
    }

    #[test]
    fn good_arguments_parse() {
        let args = parse(&[
            "--ticks",
            "5",
            "--users",
            "5000",
            "--cohorts",
            "2",
            "--chunk",
            "512",
            "--threads",
            "4",
            "--shards",
            "2",
            "--seed",
            "11",
            "--gamma",
            "0.7",
            "--eta",
            "0.1",
            "--demand-every",
            "3",
            "--cold",
        ])
        .unwrap();
        assert_eq!(args.ticks, 5);
        assert_eq!(args.users, 5000);
        assert_eq!(args.cohorts, 2);
        assert_eq!(args.chunk, 512);
        assert_eq!(args.threads, 4);
        assert_eq!(args.shards, 2);
        assert_eq!(args.seed, 11);
        assert_eq!(args.gamma, 0.7);
        assert_eq!(args.eta, 0.1);
        assert_eq!(args.demand_every, 3);
        assert!(args.cold);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.ticks, 10);
        assert_eq!(defaults.users, 100_000);
        assert_eq!(defaults.chunk, 16_384);
        assert!(!defaults.cold);
        // Cadence 0 is the documented write-back-off configuration.
        assert_eq!(parse(&["--demand-every", "0"]).unwrap().demand_every, 0);
    }
}
