//! Regenerates the golden snapshots for the scenario corpus and the
//! figure-series pipelines (Figures 4 and 5).
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin regen_golden [-- <out_dir>]`
//!
//! Writes one `<scenario>.json` per corpus entry plus one
//! `figure-<name>.json` per figure snapshot (default output:
//! `tests/golden/` at the workspace root) and removes stale snapshots for
//! entries that no longer exist. The output directory is treated as
//! wholly owned by this binary: any `*.json` in it that does not match a
//! current scenario or figure snapshot is pruned, so don't point it at a
//! directory holding unrelated JSON. The corpus, the figure pipelines and
//! the codec are fully deterministic: running this twice produces
//! byte-identical files. Only run it to *intentionally* move the pinned
//! numbers, and say why in the commit message (see `tests/README.md`).

use std::collections::BTreeSet;
use std::path::PathBuf;
use subcomp_exp::corpus::run_corpus;
use subcomp_exp::figures::snapshots::figure_snapshots;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden").to_string())
        .into();
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut fresh = BTreeSet::new();
    let mut failures = 0usize;
    for (name, result) in run_corpus(threads) {
        match result {
            Ok(res) => {
                let path = out_dir.join(format!("{name}.json"));
                std::fs::write(&path, res.to_json().render())
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!("wrote {}", path.display());
                fresh.insert(format!("{name}.json"));
            }
            Err(e) => {
                eprintln!("FAILED {name}: {e}");
                failures += 1;
            }
        }
    }

    match figure_snapshots() {
        Ok(snaps) => {
            for (name, json) in snaps {
                let path = out_dir.join(format!("{name}.json"));
                std::fs::write(&path, json.render())
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                println!("wrote {}", path.display());
                fresh.insert(format!("{name}.json"));
            }
        }
        Err(e) => {
            eprintln!("FAILED figure snapshots: {e}");
            failures += 1;
        }
    }

    // Drop snapshots whose scenario (or figure) left the registry — but
    // only from a fully successful run: after a partial failure, a missing
    // name means "entry broke", not "entry removed", and its committed
    // golden must survive.
    if failures == 0 {
        prune_stale(&out_dir, &fresh);
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s) failed — goldens are incomplete");
        std::process::exit(1);
    }
    println!("{} golden snapshot(s) up to date in {}", fresh.len(), out_dir.display());
}

fn prune_stale(out_dir: &PathBuf, fresh: &BTreeSet<String>) {
    if let Ok(entries) = std::fs::read_dir(out_dir) {
        for entry in entries.flatten() {
            let file = entry.file_name().to_string_lossy().into_owned();
            if file.ends_with(".json") && !fresh.contains(&file) {
                match std::fs::remove_file(entry.path()) {
                    Ok(()) => println!("removed stale {file}"),
                    Err(e) => eprintln!("could not remove stale {file}: {e}"),
                }
            }
        }
    }
}
