//! Solve a custom market from the command line.
//!
//! Usage:
//!   `cargo run -p subcomp-exp --bin scenario -- <p> <q> <alpha,beta,v>...`
//!
//! Example (two CP types at price 0.6, cap 0.5):
//!   `cargo run -p subcomp-exp --bin scenario -- 0.6 0.5 4,2,1 2,5,0.2`
//!
//! Prints the subsidization equilibrium, its Theorem 3 certificate, the
//! welfare breakdown, and the Theorem 6 sensitivities.

use subcomp_core::equilibrium::verify_equilibrium;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::sensitivity::Sensitivity;
use subcomp_core::welfare::WelfareBreakdown;
use subcomp_exp::report::Table;
use subcomp_model::aggregation::{build_system, ExpCpSpec};

fn usage() -> ! {
    eprintln!("usage: scenario <p> <q> <alpha,beta,v> [<alpha,beta,v> ...]");
    eprintln!("example: scenario 0.6 0.5 4,2,1 2,5,0.2");
    std::process::exit(2);
}

fn parse_spec(s: &str) -> Option<ExpCpSpec> {
    let parts: Vec<f64> = s.split(',').map(|x| x.trim().parse().ok()).collect::<Option<_>>()?;
    match parts.as_slice() {
        [alpha, beta, v] => Some(ExpCpSpec::unit(*alpha, *beta, *v)),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let p: f64 = args[0].parse().unwrap_or_else(|_| usage());
    let q: f64 = args[1].parse().unwrap_or_else(|_| usage());
    let specs: Vec<ExpCpSpec> =
        args[2..].iter().map(|s| parse_spec(s).unwrap_or_else(|| usage())).collect();

    let system = build_system(&specs, 1.0).expect("valid market");
    let game = SubsidyGame::new(system, p, q).expect("valid game");
    let eq = NashSolver::default().solve(&game).expect("equilibrium");

    println!("equilibrium at p = {p}, q = {q} ({} sweeps):\n", eq.iterations);
    let mut t = Table::new(&["cp", "alpha", "beta", "v", "subsidy", "users", "theta", "utility"]);
    for i in 0..game.n() {
        t.row(&[
            i as f64,
            specs[i].alpha,
            specs[i].beta,
            specs[i].v,
            eq.subsidies[i],
            eq.state.m[i],
            eq.state.theta_i[i],
            eq.utilities[i],
        ]);
    }
    println!("{}", t.render());
    println!(
        "utilization {:.4}  | ISP revenue {:.4}  | welfare {:.4}",
        eq.state.phi,
        eq.isp_revenue(&game),
        eq.welfare(&game)
    );

    let cert = verify_equilibrium(&game, &eq.subsidies).expect("certificate");
    println!(
        "certificate: KKT {:.2e}, threshold {:.2e} ({})",
        cert.max_kkt_residual,
        cert.max_threshold_residual,
        if cert.is_equilibrium(1e-5) { "equilibrium" } else { "NOT an equilibrium" }
    );

    let b = WelfareBreakdown::compute(&game, &eq.subsidies).expect("breakdown");
    println!(
        "money: users pay {:.4} + CPs subsidize {:.4} = ISP {:.4}",
        b.user_payments, b.subsidy_outlay, b.isp_revenue
    );

    match Sensitivity::compute(&game, &eq.subsidies) {
        Ok(sens) => {
            println!("\nsensitivities (Theorem 6):");
            let mut st = Table::new(&["cp", "ds/dq", "ds/dp"]);
            for i in 0..game.n() {
                st.row(&[i as f64, sens.ds_dq[i], sens.ds_dp[i]]);
            }
            println!("{}", st.render());
            if !sens.regular {
                println!("(equilibrium is degenerate: derivatives are one-sided)");
            }
        }
        Err(e) => println!("sensitivity analysis unavailable: {e}"),
    }
}
