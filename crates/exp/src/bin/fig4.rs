//! Regenerates paper Figure 4 (run: `cargo run -p subcomp-exp --bin fig4`).
use subcomp_exp::figures::fig4;
use subcomp_exp::report::results_dir;

fn main() {
    let fig = fig4::compute(&fig4::default_prices(51)).expect("figure 4 computes");
    println!("{}", fig.render());
    match fig.check_shape() {
        Ok(()) => println!("shape check: OK (theta decreasing, revenue single-peaked)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let path = results_dir().join("fig4.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
