//! Regenerates paper Figure 5 (run: `cargo run -p subcomp-exp --bin fig5`).
use subcomp_exp::figures::{fig4, fig5};
use subcomp_exp::report::results_dir;

fn main() {
    let fig = fig5::compute(&fig4::default_prices(51)).expect("figure 5 computes");
    println!("{}", fig.render());
    match fig.check_shape() {
        Ok(()) => {
            println!("shape check: OK (all theta_i single-peaked; low-alpha/beta rise first)")
        }
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let path = results_dir().join("fig5.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
