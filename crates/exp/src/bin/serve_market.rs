//! `serve_market` — the (sharded) equilibrium service under deterministic
//! load.
//!
//! Stands up a [`ShardedServer`] over one or more resident copies of the
//! paper's §5 market and drives it with the stream-split load generator:
//! mixed read/update traffic over a hot-key table with Zipf-like skew,
//! interleaved across markets, each market pinned to a worker shard by
//! stable hash. The report shows how the request mix decomposed into
//! answer sources (lock-free / cache hit / tangent / warm / cold /
//! partial), the per-shard counters, a failure summary by typed error
//! kind and by market, and a bit-level response checksum — everything
//! above the `timing` line is deterministic for a given configuration,
//! so the output diffs cleanly across machines *and across shard counts*
//! (per-market streams and replies do not depend on `--shards`).
//!
//! With `--chaos SEED` the same workload runs under the deterministic
//! fault harness instead: panics, shard kills, NaN-poisoned curves and
//! budget starvation are injected on a schedule derived purely from the
//! seed, every market is healed at the end, and the report pins the
//! fault-inclusive checksum plus the recovery counters. Replaying the
//! same seed — at any shard count — reproduces the report byte for byte.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin serve_market [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--requests N`      requests to serve per market (default 2000)
//!   `--markets M`       resident markets (default 1)
//!   `--shards S`        worker shards (default 1)
//!   `--keys K`          hot operating points (default 8)
//!   `--skew Z`          Zipf-like skew over the keys (default 1.0)
//!   `--read-frac F`     probability a step is a plain read (default 0.8)
//!   `--sens-frac F`     probability a step is a sensitivity read (default 0.1)
//!                       (the fractions must sum to at most 1; the
//!                       remainder switches the operating point)
//!   `--pool P`          warm workspaces per market (default 2)
//!   `--cache C`         cache capacity per market, 0 = always-miss (default 64)
//!   `--seed S`          master seed (default 7)
//!   `--warmup W`        requests excluded from the latency window (default 100)
//!   `--chaos SEED`      run under the fault-injection harness
//!   `--max-fail-frac F` tolerated failed-request fraction (default 0)
//!
//! Latency percentiles come from `num::stats::quantile`, which reports an
//! explicit error on an empty window (e.g. `--warmup` ≥ total requests);
//! the report prints `n/a` for that window instead of dying.
//!
//! Bad arguments exit with a one-line usage error on stderr. The exit
//! code is 1 when the failed-request fraction exceeds `--max-fail-frac`,
//! or — under `--chaos` — when any market remains unrecovered after the
//! final heal sweep; 0 otherwise.
//!
//! [`ShardedServer`]: subcomp_exp::server::ShardedServer

use std::collections::BTreeMap;
use std::time::Instant;
use subcomp_core::game::SubsidyGame;
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::server::{
    error_kind, fold_reply, generate_multi, run_chaos, summarize_latencies, ChaosConfig,
    LoadGenConfig, Reply, ShardedConfig, ShardedServer, Source,
};

#[derive(Debug)]
struct Args {
    requests: usize,
    markets: usize,
    shards: usize,
    keys: usize,
    skew: f64,
    read_frac: f64,
    sens_frac: f64,
    pool: usize,
    cache: usize,
    seed: u64,
    warmup: usize,
    chaos: Option<u64>,
    max_fail_frac: f64,
}

/// Parses and validates the flag list; every rejection is a one-line
/// message for the usage-error path, nothing panics.
fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        requests: 2000,
        markets: 1,
        shards: 1,
        keys: 8,
        skew: 1.0,
        read_frac: 0.8,
        sens_frac: 0.1,
        pool: 2,
        cache: 64,
        seed: 7,
        warmup: 100,
        chaos: None,
        max_fail_frac: 0.0,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let positive = |what: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(0) => Err(format!("{what} must be at least 1 (got 0)")),
                Ok(v) => Ok(v),
                Err(_) => Err(format!("{what}: expected a positive integer, got {raw:?}")),
            }
        };
        let count = |what: &str, raw: String| -> Result<usize, String> {
            raw.parse::<usize>()
                .map_err(|_| format!("{what}: expected a non-negative integer, got {raw:?}"))
        };
        let fraction = |what: &str, raw: String| -> Result<f64, String> {
            match raw.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => Ok(v),
                Ok(v) => Err(format!("{what} must lie in [0, 1] (got {v})")),
                Err(_) => Err(format!("{what}: expected a number, got {raw:?}")),
            }
        };
        match flag.as_str() {
            "--requests" => args.requests = positive("--requests", take("--requests")?)?,
            "--markets" => args.markets = positive("--markets", take("--markets")?)?,
            "--shards" => args.shards = positive("--shards", take("--shards")?)?,
            "--keys" => args.keys = positive("--keys", take("--keys")?)?,
            "--skew" => {
                let raw = take("--skew")?;
                args.skew =
                    raw.parse::<f64>().ok().filter(|z| z.is_finite() && *z >= 0.0).ok_or_else(
                        || format!("--skew: expected a finite number ≥ 0, got {raw:?}"),
                    )?;
            }
            "--read-frac" => args.read_frac = fraction("--read-frac", take("--read-frac")?)?,
            "--sens-frac" => args.sens_frac = fraction("--sens-frac", take("--sens-frac")?)?,
            "--pool" => args.pool = positive("--pool", take("--pool")?)?,
            "--cache" => args.cache = count("--cache", take("--cache")?)?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--warmup" => {
                args.warmup = take("--warmup")?
                    .parse()
                    .map_err(|_| "--warmup: expected an integer".to_string())?;
            }
            "--chaos" => {
                args.chaos = Some(
                    take("--chaos")?
                        .parse()
                        .map_err(|_| "--chaos: expected an integer seed".to_string())?,
                );
            }
            "--max-fail-frac" => {
                args.max_fail_frac = fraction("--max-fail-frac", take("--max-fail-frac")?)?;
            }
            other => return Err(format!("unknown flag {other} (see the module docs)")),
        }
    }
    // The two fractions are disjoint shares of one categorical draw; a
    // sum above 1 would silently skew the mix (the old behavior) — reject
    // it at the door instead.
    if args.read_frac + args.sens_frac > 1.0 {
        return Err(format!(
            "--read-frac + --sens-frac must not exceed 1 (got {} + {} = {})",
            args.read_frac,
            args.sens_frac,
            args.read_frac + args.sens_frac
        ));
    }
    Ok(args)
}

fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_market: {msg}");
            std::process::exit(2);
        }
    }
}

fn print_window(label: &str, samples: &[f64]) {
    match summarize_latencies(samples) {
        Ok(s) => println!(
            "latency ({label}, non-deterministic): p50 {:.1} ns, p99 {:.1} ns, mean {:.1} ns \
             over {} requests",
            s.p50, s.p99, s.mean, s.count
        ),
        Err(e) => println!("latency ({label}): n/a ({e})"),
    }
}

fn section5_markets(n: usize) -> Vec<(u64, SubsidyGame)> {
    (0..n as u64)
        .map(|id| (id, SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")))
        .collect()
}

/// The deterministic failure-summary section: totals by typed error
/// kind, then by market — or a single `failures: none` line.
fn print_failures(by_kind: &BTreeMap<&'static str, usize>, by_market: &BTreeMap<u64, usize>) {
    if by_kind.is_empty() {
        println!("failures: none");
        return;
    }
    let total: usize = by_kind.values().sum();
    let kinds: Vec<String> =
        by_kind.iter().map(|(kind, count)| format!("{count} {kind}")).collect();
    println!("failures: {total} total ({})", kinds.join(", "));
    let markets: Vec<String> =
        by_market.iter().map(|(market, count)| format!("market {market}: {count}")).collect();
    println!("failures by market: {}", markets.join(", "));
}

/// Exits by the failure-fraction gate shared by both modes.
fn exit_by_fail_frac(failed: usize, total: usize, max_fail_frac: f64) -> ! {
    let frac = failed as f64 / (total as f64).max(1.0);
    if frac > max_fail_frac {
        eprintln!(
            "serve_market: failure fraction {frac:.4} exceeds --max-fail-frac {max_fail_frac}"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `--chaos` mode: run the deterministic fault harness over the same
/// workload and print the fault-inclusive replay report. Everything
/// printed here is deterministic — two runs with equal flags (any shard
/// count) are byte-identical.
fn run_chaos_mode(args: &Args, load: &LoadGenConfig, chaos_seed: u64) -> ! {
    let report = run_chaos(
        &section5_markets(args.markets),
        &ChaosConfig {
            shards: args.shards,
            pool: args.pool,
            cache: args.cache,
            load: *load,
            chaos_seed,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_market: chaos harness failed: {e}");
        std::process::exit(2);
    });
    println!(
        "chaos: seed {chaos_seed}, {} scheduled fault events over {} requests",
        report.injected, report.requests
    );
    println!("chaos served: {} ok, {} failed (typed)", report.ok, report.failed);
    println!(
        "chaos recovery: {} shard restarts, {} market rebuilds",
        report.shard_restarts, report.market_rebuilds
    );
    print_failures(
        &report.failures_by_kind.iter().copied().collect(),
        &report.failures_by_market.iter().copied().collect(),
    );
    println!("response checksum: {:016x}", report.checksum);
    println!("unrecovered markets: {}", report.unrecovered.len());
    if !report.unrecovered.is_empty() {
        eprintln!("serve_market: unrecovered markets after heal sweep: {:?}", report.unrecovered);
        std::process::exit(1);
    }
    exit_by_fail_frac(report.failed, report.requests, args.max_fail_frac);
}

fn main() {
    let args = parse_args();
    println!("serve_market: sharded equilibrium service under deterministic load");
    println!(
        "config: requests={}/market markets={} shards={} keys={} skew={} read-frac={} \
         sens-frac={} pool={} cache={} seed={} warmup={}",
        args.requests,
        args.markets,
        args.shards,
        args.keys,
        args.skew,
        args.read_frac,
        args.sens_frac,
        args.pool,
        args.cache,
        args.seed,
        args.warmup
    );

    let load = LoadGenConfig {
        requests: args.requests,
        seed: args.seed,
        read_fraction: args.read_frac,
        sensitivity_fraction: args.sens_frac,
        hot_keys: args.keys,
        skew: args.skew,
    };
    if let Some(chaos_seed) = args.chaos {
        run_chaos_mode(&args, &load, chaos_seed);
    }

    let mut server = ShardedServer::new(
        section5_markets(args.markets),
        &ShardedConfig { shards: args.shards, pool: args.pool, cache: args.cache },
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(2);
    });
    let stream = generate_multi(&load, args.markets).unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(2);
    });

    let mut sum = 0u64;
    let mut fail_kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut fail_markets: BTreeMap<u64, usize> = BTreeMap::new();
    let mut sources = [0usize; 6]; // lock-free, cache-hit, tangent, warm, cold, partial
    let mut latencies = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for (market, req) in &stream {
        let t0 = Instant::now();
        match server.serve(*market, *req) {
            Ok(reply) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                let source = match &reply {
                    Reply::Equilibrium { source, .. }
                    | Reply::Sensitivity { source, .. }
                    | Reply::Degenerate { source, .. } => Some(*source),
                    Reply::Updated { .. } => None,
                };
                if let Some(source) = source {
                    sources[match source {
                        Source::LockFree => 0,
                        Source::CacheHit => 1,
                        Source::Tangent => 2,
                        Source::Warm => 3,
                        Source::Cold => 4,
                        Source::Partial => 5,
                    }] += 1;
                }
                sum = fold_reply(sum, *market, &reply);
            }
            Err(e) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                *fail_kinds.entry(error_kind(&e)).or_insert(0) += 1;
                *fail_markets.entry(*market).or_insert(0) += 1;
            }
        }
    }
    let elapsed = start.elapsed();
    let failures: usize = fail_kinds.values().sum();

    let reports = server.shard_reports().unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(1);
    });
    let total =
        |f: fn(&subcomp_exp::server::ShardReport) -> u64| -> u64 { reports.iter().map(f).sum() };
    println!(
        "served: {} requests ({} updates, {} equilibria, {} sensitivities on shards, \
         {} lock-free, {} failed)",
        stream.len(),
        total(|r| r.stats.updates),
        total(|r| r.stats.equilibria),
        total(|r| r.stats.sensitivities),
        server.lockfree_hits(),
        failures
    );
    println!(
        "answer sources: {} lock-free, {} cache-hit, {} tangent, {} warm, {} cold, {} partial",
        sources[0], sources[1], sources[2], sources[3], sources[4], sources[5]
    );
    println!(
        "cache (all shards): {} hits, {} misses, {} insertions, {} evictions, {}/{} resident",
        total(|r| r.cache.hits),
        total(|r| r.cache.misses),
        total(|r| r.cache.insertions),
        total(|r| r.cache.evictions),
        reports.iter().map(|r| r.cache.len).sum::<usize>(),
        reports.iter().map(|r| r.cache.capacity).sum::<usize>(),
    );
    for r in &reports {
        println!(
            "shard {}: markets={}, quarantined={}, {} updates, {} equilibria, {} sensitivities, \
             {} cache-hit, {} tangent, {} warm, {} cold, {} partial",
            r.shard,
            r.markets,
            r.quarantined,
            r.stats.updates,
            r.stats.equilibria,
            r.stats.sensitivities,
            r.stats.cache_hits,
            r.stats.tangent_solves,
            r.stats.warm_solves,
            r.stats.cold_solves,
            r.stats.partial_solves
        );
    }
    print_failures(&fail_kinds, &fail_markets);
    println!("response checksum: {sum:016x}");
    let measured = &latencies[args.warmup.min(latencies.len())..];
    print_window("steady state", measured);
    println!(
        "timing (non-deterministic): {:.3}s wall, {:.0} requests/s",
        elapsed.as_secs_f64(),
        stream.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    exit_by_fail_frac(failures, stream.len(), args.max_fail_frac);
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(flags: &[&str]) -> Result<super::Args, String> {
        parse_args_from(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bad_arguments_are_usage_errors_not_panics() {
        assert!(parse(&["--requests", "0"]).is_err());
        assert!(parse(&["--keys", "0"]).is_err());
        assert!(parse(&["--markets", "0"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--read-frac", "1.5"]).is_err());
        assert!(parse(&["--sens-frac", "-0.1"]).is_err());
        assert!(parse(&["--skew", "-1"]).is_err());
        assert!(parse(&["--skew", "inf"]).is_err());
        assert!(parse(&["--pool"]).is_err());
        assert!(parse(&["--cache", "-1"]).is_err());
        assert!(parse(&["--chaos", "x"]).is_err());
        assert!(parse(&["--max-fail-frac", "1.5"]).is_err());
        assert!(parse(&["--max-fail-frac", "-0.1"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
        for bad in [parse(&["--keys", "0"]).unwrap_err(), parse(&["--skew", "-1"]).unwrap_err()] {
            assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        }
    }

    #[test]
    fn fraction_sum_above_one_is_a_usage_error() {
        // The regression: 0.8 + 0.3 used to be silently accepted and
        // skewed the op mix; it must be a one-line usage error now.
        let bad = parse(&["--read-frac", "0.8", "--sens-frac", "0.3"]).unwrap_err();
        assert!(bad.contains("must not exceed 1"), "unexpected message: {bad}");
        assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        // Each flag alone stays within its own [0, 1] check (the sens
        // value must still clear the 0.8 default read fraction).
        assert!(parse(&["--read-frac", "0.8"]).is_ok());
        assert!(parse(&["--sens-frac", "0.2"]).is_ok());
        // The default read fraction participates in the sum check too.
        assert!(parse(&["--sens-frac", "0.3"]).unwrap_err().contains("must not exceed 1"));
        // Summing exactly to 1 is valid (a switch-free workload).
        let ok = parse(&["--read-frac", "0.75", "--sens-frac", "0.25"]).unwrap();
        assert_eq!(ok.read_frac + ok.sens_frac, 1.0);
    }

    #[test]
    fn good_arguments_parse() {
        let args = parse(&[
            "--requests",
            "500",
            "--keys",
            "4",
            "--skew",
            "1.5",
            "--pool",
            "3",
            "--cache",
            "16",
            "--shards",
            "4",
            "--markets",
            "8",
        ])
        .unwrap();
        assert_eq!(args.requests, 500);
        assert_eq!(args.keys, 4);
        assert_eq!(args.skew, 1.5);
        assert_eq!(args.pool, 3);
        assert_eq!(args.cache, 16);
        assert_eq!(args.shards, 4);
        assert_eq!(args.markets, 8);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.warmup, 100);
        assert_eq!(defaults.cache, 64);
        assert_eq!(defaults.markets, 1);
        assert_eq!(defaults.shards, 1);
        assert_eq!(defaults.chaos, None);
        assert_eq!(defaults.max_fail_frac, 0.0);
        // Capacity 0 is the documented always-miss configuration.
        assert_eq!(parse(&["--cache", "0"]).unwrap().cache, 0);
    }

    #[test]
    fn chaos_and_fail_frac_flags_parse() {
        let args = parse(&["--chaos", "42", "--max-fail-frac", "0.25"]).unwrap();
        assert_eq!(args.chaos, Some(42));
        assert_eq!(args.max_fail_frac, 0.25);
    }
}
