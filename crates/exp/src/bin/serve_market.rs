//! `serve_market` — the (sharded) equilibrium service under deterministic
//! load.
//!
//! Stands up a [`ShardedServer`] over one or more resident copies of the
//! paper's §5 market and drives it with the stream-split load generator:
//! mixed read/update traffic over a hot-key table with Zipf-like skew,
//! interleaved across markets, each market pinned to a worker shard by
//! stable hash. The report shows how the request mix decomposed into
//! answer sources (lock-free / cache hit / tangent / warm / cold), the
//! per-shard counters, and a bit-level response checksum — everything
//! above the `timing` line is deterministic for a given configuration,
//! so the output diffs cleanly across machines *and across shard counts*
//! (per-market streams and replies do not depend on `--shards`).
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin serve_market [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--requests N`    requests to serve per market (default 2000)
//!   `--markets M`     resident markets (default 1)
//!   `--shards S`      worker shards (default 1)
//!   `--keys K`        hot operating points (default 8)
//!   `--skew Z`        Zipf-like skew over the keys (default 1.0)
//!   `--read-frac F`   probability a step is a plain read (default 0.8)
//!   `--sens-frac F`   probability a step is a sensitivity read (default 0.1)
//!                     (the fractions must sum to at most 1; the
//!                     remainder switches the operating point)
//!   `--pool P`        warm workspaces per market (default 2)
//!   `--cache C`       cache capacity per market, 0 = always-miss (default 64)
//!   `--seed S`        master seed (default 7)
//!   `--warmup W`      requests excluded from the latency window (default 100)
//!
//! Latency percentiles come from `num::stats::quantile`, which reports an
//! explicit error on an empty window (e.g. `--warmup` ≥ total requests);
//! the report prints `n/a` for that window instead of dying.
//!
//! Bad arguments exit with a one-line usage error on stderr; any request
//! the server rejects exits 1 after the report.
//!
//! [`ShardedServer`]: subcomp_exp::server::ShardedServer

use std::time::Instant;
use subcomp_core::game::SubsidyGame;
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::server::{
    generate_multi, summarize_latencies, LoadGenConfig, Reply, ShardedConfig, ShardedServer, Source,
};

#[derive(Debug)]
struct Args {
    requests: usize,
    markets: usize,
    shards: usize,
    keys: usize,
    skew: f64,
    read_frac: f64,
    sens_frac: f64,
    pool: usize,
    cache: usize,
    seed: u64,
    warmup: usize,
}

/// Parses and validates the flag list; every rejection is a one-line
/// message for the usage-error path, nothing panics.
fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        requests: 2000,
        markets: 1,
        shards: 1,
        keys: 8,
        skew: 1.0,
        read_frac: 0.8,
        sens_frac: 0.1,
        pool: 2,
        cache: 64,
        seed: 7,
        warmup: 100,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let positive = |what: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(0) => Err(format!("{what} must be at least 1 (got 0)")),
                Ok(v) => Ok(v),
                Err(_) => Err(format!("{what}: expected a positive integer, got {raw:?}")),
            }
        };
        let count = |what: &str, raw: String| -> Result<usize, String> {
            raw.parse::<usize>()
                .map_err(|_| format!("{what}: expected a non-negative integer, got {raw:?}"))
        };
        let fraction = |what: &str, raw: String| -> Result<f64, String> {
            match raw.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => Ok(v),
                Ok(v) => Err(format!("{what} must lie in [0, 1] (got {v})")),
                Err(_) => Err(format!("{what}: expected a number, got {raw:?}")),
            }
        };
        match flag.as_str() {
            "--requests" => args.requests = positive("--requests", take("--requests")?)?,
            "--markets" => args.markets = positive("--markets", take("--markets")?)?,
            "--shards" => args.shards = positive("--shards", take("--shards")?)?,
            "--keys" => args.keys = positive("--keys", take("--keys")?)?,
            "--skew" => {
                let raw = take("--skew")?;
                args.skew =
                    raw.parse::<f64>().ok().filter(|z| z.is_finite() && *z >= 0.0).ok_or_else(
                        || format!("--skew: expected a finite number ≥ 0, got {raw:?}"),
                    )?;
            }
            "--read-frac" => args.read_frac = fraction("--read-frac", take("--read-frac")?)?,
            "--sens-frac" => args.sens_frac = fraction("--sens-frac", take("--sens-frac")?)?,
            "--pool" => args.pool = positive("--pool", take("--pool")?)?,
            "--cache" => args.cache = count("--cache", take("--cache")?)?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--warmup" => {
                args.warmup = take("--warmup")?
                    .parse()
                    .map_err(|_| "--warmup: expected an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other} (see the module docs)")),
        }
    }
    // The two fractions are disjoint shares of one categorical draw; a
    // sum above 1 would silently skew the mix (the old behavior) — reject
    // it at the door instead.
    if args.read_frac + args.sens_frac > 1.0 {
        return Err(format!(
            "--read-frac + --sens-frac must not exceed 1 (got {} + {} = {})",
            args.read_frac,
            args.sens_frac,
            args.read_frac + args.sens_frac
        ));
    }
    Ok(args)
}

fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_market: {msg}");
            std::process::exit(2);
        }
    }
}

/// Folds a reply into the running bit-level checksum: XOR of the bits of
/// every float the client would see, salted with the market the reply
/// belongs to. Order-sensitive enough to catch any drift in the served
/// sequence, cheap enough to be free.
fn checksum(acc: u64, market: u64, reply: &Reply) -> u64 {
    let mut acc = acc.rotate_left(1) ^ market.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match reply {
        Reply::Updated { value, .. } => acc ^= value.to_bits(),
        Reply::Equilibrium { snap, .. } => {
            for s in snap.subsidies() {
                acc ^= s.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Sensitivity { ds, snap, .. } => {
            for d in ds {
                acc ^= d.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
    }
    acc
}

fn print_window(label: &str, samples: &[f64]) {
    match summarize_latencies(samples) {
        Ok(s) => println!(
            "latency ({label}, non-deterministic): p50 {:.1} ns, p99 {:.1} ns, mean {:.1} ns \
             over {} requests",
            s.p50, s.p99, s.mean, s.count
        ),
        Err(e) => println!("latency ({label}): n/a ({e})"),
    }
}

fn main() {
    let args = parse_args();
    println!("serve_market: sharded equilibrium service under deterministic load");
    println!(
        "config: requests={}/market markets={} shards={} keys={} skew={} read-frac={} \
         sens-frac={} pool={} cache={} seed={} warmup={}",
        args.requests,
        args.markets,
        args.shards,
        args.keys,
        args.skew,
        args.read_frac,
        args.sens_frac,
        args.pool,
        args.cache,
        args.seed,
        args.warmup
    );

    let markets: Vec<(u64, SubsidyGame)> = (0..args.markets as u64)
        .map(|id| (id, SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")))
        .collect();
    let mut server = ShardedServer::new(
        markets,
        &ShardedConfig { shards: args.shards, pool: args.pool, cache: args.cache },
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(2);
    });
    let stream = generate_multi(
        &LoadGenConfig {
            requests: args.requests,
            seed: args.seed,
            read_fraction: args.read_frac,
            sensitivity_fraction: args.sens_frac,
            hot_keys: args.keys,
            skew: args.skew,
        },
        args.markets,
    )
    .unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(2);
    });

    let mut sum = 0u64;
    let mut failures = 0usize;
    let mut sources = [0usize; 5]; // lock-free, cache-hit, tangent, warm, cold
    let mut latencies = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for (market, req) in &stream {
        let t0 = Instant::now();
        match server.serve(*market, *req) {
            Ok(reply) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                let source = match &reply {
                    Reply::Equilibrium { source, .. } | Reply::Sensitivity { source, .. } => {
                        Some(*source)
                    }
                    Reply::Updated { .. } => None,
                };
                if let Some(source) = source {
                    sources[match source {
                        Source::LockFree => 0,
                        Source::CacheHit => 1,
                        Source::Tangent => 2,
                        Source::Warm => 3,
                        Source::Cold => 4,
                    }] += 1;
                }
                sum = checksum(sum, *market, &reply);
            }
            Err(e) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                eprintln!("serve_market: request failed: {e}");
                failures += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    let reports = server.shard_reports().unwrap_or_else(|e| {
        eprintln!("serve_market: {e}");
        std::process::exit(1);
    });
    let total =
        |f: fn(&subcomp_exp::server::ShardReport) -> u64| -> u64 { reports.iter().map(f).sum() };
    println!(
        "served: {} requests ({} updates, {} equilibria, {} sensitivities on shards, \
         {} lock-free, {} failed)",
        stream.len(),
        total(|r| r.stats.updates),
        total(|r| r.stats.equilibria),
        total(|r| r.stats.sensitivities),
        server.lockfree_hits(),
        failures
    );
    println!(
        "answer sources: {} lock-free, {} cache-hit, {} tangent, {} warm, {} cold",
        sources[0], sources[1], sources[2], sources[3], sources[4]
    );
    println!(
        "cache (all shards): {} hits, {} misses, {} insertions, {} evictions, {}/{} resident",
        total(|r| r.cache.hits),
        total(|r| r.cache.misses),
        total(|r| r.cache.insertions),
        total(|r| r.cache.evictions),
        reports.iter().map(|r| r.cache.len).sum::<usize>(),
        reports.iter().map(|r| r.cache.capacity).sum::<usize>(),
    );
    for r in &reports {
        println!(
            "shard {}: markets={}, {} updates, {} equilibria, {} sensitivities, \
             {} cache-hit, {} tangent, {} warm, {} cold",
            r.shard,
            r.markets,
            r.stats.updates,
            r.stats.equilibria,
            r.stats.sensitivities,
            r.stats.cache_hits,
            r.stats.tangent_solves,
            r.stats.warm_solves,
            r.stats.cold_solves
        );
    }
    println!("response checksum: {sum:016x}");
    let measured = &latencies[args.warmup.min(latencies.len())..];
    print_window("steady state", measured);
    println!(
        "timing (non-deterministic): {:.3}s wall, {:.0} requests/s",
        elapsed.as_secs_f64(),
        stream.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(flags: &[&str]) -> Result<super::Args, String> {
        parse_args_from(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bad_arguments_are_usage_errors_not_panics() {
        assert!(parse(&["--requests", "0"]).is_err());
        assert!(parse(&["--keys", "0"]).is_err());
        assert!(parse(&["--markets", "0"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--read-frac", "1.5"]).is_err());
        assert!(parse(&["--sens-frac", "-0.1"]).is_err());
        assert!(parse(&["--skew", "-1"]).is_err());
        assert!(parse(&["--skew", "inf"]).is_err());
        assert!(parse(&["--pool"]).is_err());
        assert!(parse(&["--cache", "-1"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
        for bad in [parse(&["--keys", "0"]).unwrap_err(), parse(&["--skew", "-1"]).unwrap_err()] {
            assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        }
    }

    #[test]
    fn fraction_sum_above_one_is_a_usage_error() {
        // The regression: 0.8 + 0.3 used to be silently accepted and
        // skewed the op mix; it must be a one-line usage error now.
        let bad = parse(&["--read-frac", "0.8", "--sens-frac", "0.3"]).unwrap_err();
        assert!(bad.contains("must not exceed 1"), "unexpected message: {bad}");
        assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        // Each flag alone stays within its own [0, 1] check (the sens
        // value must still clear the 0.8 default read fraction).
        assert!(parse(&["--read-frac", "0.8"]).is_ok());
        assert!(parse(&["--sens-frac", "0.2"]).is_ok());
        // The default read fraction participates in the sum check too.
        assert!(parse(&["--sens-frac", "0.3"]).unwrap_err().contains("must not exceed 1"));
        // Summing exactly to 1 is valid (a switch-free workload).
        let ok = parse(&["--read-frac", "0.75", "--sens-frac", "0.25"]).unwrap();
        assert_eq!(ok.read_frac + ok.sens_frac, 1.0);
    }

    #[test]
    fn good_arguments_parse() {
        let args = parse(&[
            "--requests",
            "500",
            "--keys",
            "4",
            "--skew",
            "1.5",
            "--pool",
            "3",
            "--cache",
            "16",
            "--shards",
            "4",
            "--markets",
            "8",
        ])
        .unwrap();
        assert_eq!(args.requests, 500);
        assert_eq!(args.keys, 4);
        assert_eq!(args.skew, 1.5);
        assert_eq!(args.pool, 3);
        assert_eq!(args.cache, 16);
        assert_eq!(args.shards, 4);
        assert_eq!(args.markets, 8);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.warmup, 100);
        assert_eq!(defaults.cache, 64);
        assert_eq!(defaults.markets, 1);
        assert_eq!(defaults.shards, 1);
        // Capacity 0 is the documented always-miss configuration.
        assert_eq!(parse(&["--cache", "0"]).unwrap().cache, 0);
    }
}
