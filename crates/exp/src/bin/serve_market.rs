//! `serve_market` — the equilibrium server under deterministic load.
//!
//! Stands up a resident [`EquilibriumServer`] over the paper's §5 market
//! and drives it with the stream-split load generator: mixed read/update
//! traffic over a hot-key table with Zipf-like skew. The report shows how
//! the request mix decomposed into answer sources (cache hit / tangent /
//! warm / cold), the cache counters, and a bit-level response checksum —
//! everything above the `timing` line is deterministic for a given
//! configuration, so the output diffs cleanly across machines.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin serve_market [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--requests N`    requests to serve (default 2000)
//!   `--keys K`        hot operating points (default 8)
//!   `--skew Z`        Zipf-like skew over the keys (default 1.0)
//!   `--read-frac F`   fraction of read steps (default 0.8)
//!   `--sens-frac F`   fraction of reads asking for a sensitivity (default 0.1)
//!   `--pool P`        warm workspaces (default 2)
//!   `--cache C`       cache capacity in equilibria (default 64)
//!   `--seed S`        master seed (default 7)
//!   `--warmup W`      requests excluded from the latency window (default 100)
//!
//! Latency percentiles come from `num::stats::quantile`, which reports an
//! explicit error on an empty window (e.g. `--warmup` ≥ `--requests`);
//! the report prints `n/a` for that window instead of dying.
//!
//! Bad arguments exit with a one-line usage error on stderr; any request
//! the server rejects exits 1 after the report.
//!
//! [`EquilibriumServer`]: subcomp_exp::server::EquilibriumServer

use std::time::Instant;
use subcomp_core::game::SubsidyGame;
use subcomp_exp::scenarios::section5_system;
use subcomp_exp::server::{
    generate, summarize_latencies, EquilibriumServer, LoadGenConfig, Reply, Source,
};

#[derive(Debug)]
struct Args {
    requests: usize,
    keys: usize,
    skew: f64,
    read_frac: f64,
    sens_frac: f64,
    pool: usize,
    cache: usize,
    seed: u64,
    warmup: usize,
}

/// Parses and validates the flag list; every rejection is a one-line
/// message for the usage-error path, nothing panics.
fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        requests: 2000,
        keys: 8,
        skew: 1.0,
        read_frac: 0.8,
        sens_frac: 0.1,
        pool: 2,
        cache: 64,
        seed: 7,
        warmup: 100,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let positive = |what: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(0) => Err(format!("{what} must be at least 1 (got 0)")),
                Ok(v) => Ok(v),
                Err(_) => Err(format!("{what}: expected a positive integer, got {raw:?}")),
            }
        };
        let fraction = |what: &str, raw: String| -> Result<f64, String> {
            match raw.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => Ok(v),
                Ok(v) => Err(format!("{what} must lie in [0, 1] (got {v})")),
                Err(_) => Err(format!("{what}: expected a number, got {raw:?}")),
            }
        };
        match flag.as_str() {
            "--requests" => args.requests = positive("--requests", take("--requests")?)?,
            "--keys" => args.keys = positive("--keys", take("--keys")?)?,
            "--skew" => {
                let raw = take("--skew")?;
                args.skew =
                    raw.parse::<f64>().ok().filter(|z| z.is_finite() && *z >= 0.0).ok_or_else(
                        || format!("--skew: expected a finite number ≥ 0, got {raw:?}"),
                    )?;
            }
            "--read-frac" => args.read_frac = fraction("--read-frac", take("--read-frac")?)?,
            "--sens-frac" => args.sens_frac = fraction("--sens-frac", take("--sens-frac")?)?,
            "--pool" => args.pool = positive("--pool", take("--pool")?)?,
            "--cache" => args.cache = positive("--cache", take("--cache")?)?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--warmup" => {
                args.warmup = take("--warmup")?
                    .parse()
                    .map_err(|_| "--warmup: expected an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other} (see the module docs)")),
        }
    }
    Ok(args)
}

fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_market: {msg}");
            std::process::exit(2);
        }
    }
}

/// Folds a reply into the running bit-level checksum: XOR of the bits of
/// every float the client would see. Order-sensitive enough to catch any
/// drift in the served sequence, cheap enough to be free.
fn checksum(acc: u64, reply: &Reply) -> u64 {
    let mut acc = acc.rotate_left(1);
    match reply {
        Reply::Updated { value, .. } => acc ^= value.to_bits(),
        Reply::Equilibrium { snap, .. } => {
            for s in snap.subsidies() {
                acc ^= s.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Sensitivity { ds, snap, .. } => {
            for d in ds {
                acc ^= d.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
    }
    acc
}

fn print_window(label: &str, samples: &[f64]) {
    match summarize_latencies(samples) {
        Ok(s) => println!(
            "latency ({label}, non-deterministic): p50 {:.1} ns, p99 {:.1} ns, mean {:.1} ns \
             over {} requests",
            s.p50, s.p99, s.mean, s.count
        ),
        Err(e) => println!("latency ({label}): n/a ({e})"),
    }
}

fn main() {
    let args = parse_args();
    println!("serve_market: resident equilibrium server under deterministic load");
    println!(
        "config: requests={} keys={} skew={} read-frac={} sens-frac={} pool={} cache={} \
         seed={} warmup={}",
        args.requests,
        args.keys,
        args.skew,
        args.read_frac,
        args.sens_frac,
        args.pool,
        args.cache,
        args.seed,
        args.warmup
    );

    let game = SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid");
    let mut server = EquilibriumServer::new(game, args.pool, args.cache);
    let requests = generate(&LoadGenConfig {
        requests: args.requests,
        seed: args.seed,
        read_fraction: args.read_frac,
        sensitivity_fraction: args.sens_frac,
        hot_keys: args.keys,
        skew: args.skew,
    });

    let mut sum = 0u64;
    let mut failures = 0usize;
    let mut sources = [0usize; 4]; // cache-hit, tangent, warm, cold
    let mut latencies = Vec::with_capacity(requests.len());
    let start = Instant::now();
    for req in &requests {
        let t0 = Instant::now();
        match server.serve(*req) {
            Ok(reply) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                let source = match &reply {
                    Reply::Equilibrium { source, .. } | Reply::Sensitivity { source, .. } => {
                        Some(*source)
                    }
                    Reply::Updated { .. } => None,
                };
                if let Some(source) = source {
                    sources[match source {
                        Source::CacheHit => 0,
                        Source::Tangent => 1,
                        Source::Warm => 2,
                        Source::Cold => 3,
                    }] += 1;
                }
                sum = checksum(sum, &reply);
            }
            Err(e) => {
                latencies.push(t0.elapsed().as_nanos() as f64);
                eprintln!("serve_market: request failed: {e}");
                failures += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    let st = server.stats();
    let cs = server.cache_stats();
    println!(
        "served: {} requests ({} updates, {} equilibria, {} sensitivities, {} failed)",
        requests.len(),
        st.updates,
        st.equilibria,
        st.sensitivities,
        failures
    );
    println!(
        "answer sources: {} cache-hit, {} tangent, {} warm, {} cold",
        sources[0], sources[1], sources[2], sources[3]
    );
    println!(
        "cache: {} hits, {} misses, {} insertions, {} evictions, {}/{} resident",
        cs.hits, cs.misses, cs.insertions, cs.evictions, cs.len, cs.capacity
    );
    println!("response checksum: {sum:016x}");
    let measured = &latencies[args.warmup.min(latencies.len())..];
    print_window("steady state", measured);
    println!(
        "timing (non-deterministic): {:.3}s wall, {:.0} requests/s",
        elapsed.as_secs_f64(),
        requests.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(flags: &[&str]) -> Result<super::Args, String> {
        parse_args_from(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bad_arguments_are_usage_errors_not_panics() {
        assert!(parse(&["--requests", "0"]).is_err());
        assert!(parse(&["--keys", "0"]).is_err());
        assert!(parse(&["--read-frac", "1.5"]).is_err());
        assert!(parse(&["--sens-frac", "-0.1"]).is_err());
        assert!(parse(&["--skew", "-1"]).is_err());
        assert!(parse(&["--skew", "inf"]).is_err());
        assert!(parse(&["--pool"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
        for bad in [parse(&["--keys", "0"]).unwrap_err(), parse(&["--skew", "-1"]).unwrap_err()] {
            assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        }
    }

    #[test]
    fn good_arguments_parse() {
        let args = parse(&[
            "--requests",
            "500",
            "--keys",
            "4",
            "--skew",
            "1.5",
            "--pool",
            "3",
            "--cache",
            "16",
        ])
        .unwrap();
        assert_eq!(args.requests, 500);
        assert_eq!(args.keys, 4);
        assert_eq!(args.skew, 1.5);
        assert_eq!(args.pool, 3);
        assert_eq!(args.cache, 16);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.warmup, 100);
        assert_eq!(defaults.cache, 64);
    }
}
