//! Regenerates every paper figure in one run, sharing the Section 5
//! equilibrium panel (run: `cargo run -p subcomp-exp --bin all_figures`).
use subcomp_exp::figures::{fig10, fig11, fig4, fig5, fig7, fig8, fig9, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let dir = results_dir();

    println!("=== Section 3.2 (one-sided pricing) ===\n");
    let prices35 = fig4::default_prices(51);
    let f4 = fig4::compute(&prices35).expect("fig4");
    println!("{}", f4.render());
    println!("fig4 shape: {:?}", f4.check_shape());
    f4.write_csv(&dir.join("fig4.csv")).expect("csv");

    let f5 = fig5::compute(&prices35).expect("fig5");
    println!("{}", f5.render());
    println!("fig5 shape: {:?}", f5.check_shape());
    f5.write_csv(&dir.join("fig5.csv")).expect("csv");

    println!("\n=== Section 5 (subsidization competition) ===\n");
    let panel = panel::compute(41, 5).expect("panel");

    let f7 = fig7::compute(&panel);
    println!("{}", f7.render());
    println!("fig7 shape: {:?}", f7.check_shape());
    f7.write_csv(&dir.join("fig7.csv")).expect("csv");

    let f8 = fig8::compute(&panel);
    println!("{}", f8.render());
    println!("fig8 shape: {:?}", fig8::check_shape(&f8).expect("runs"));
    f8.write_csv(&dir.join("fig8.csv")).expect("csv");

    let f9 = fig9::compute(&panel);
    println!("{}", f9.render());
    println!("fig9 shape: {:?}", fig9::check_shape(&f9).expect("runs"));
    f9.write_csv(&dir.join("fig9.csv")).expect("csv");

    let f10 = fig10::compute(&panel);
    println!("{}", f10.render());
    println!("fig10 shape: {:?}", fig10::check_shape(&f10, 0).expect("runs"));
    f10.write_csv(&dir.join("fig10.csv")).expect("csv");

    let f11 = fig11::compute(&panel);
    println!("{}", f11.render());
    println!("fig11 shape: {:?}", fig11::check_shape(&f11, 0, f11.qs.len() - 1).expect("runs"));
    f11.write_csv(&dir.join("fig11.csv")).expect("csv");

    println!("\nall CSVs written under {}", dir.display());
}
