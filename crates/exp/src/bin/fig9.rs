//! Regenerates paper Figure 9 (run: `cargo run -p subcomp-exp --bin fig9`).
use subcomp_exp::figures::{fig9, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let panel = panel::compute(41, 5).expect("panel computes");
    let fig = fig9::compute(&panel);
    println!("{}", fig.render());
    match fig9::check_shape(&fig).expect("check runs") {
        Ok(()) => {
            println!("shape check: OK (m falls with p, grows with q; rich types retain users)")
        }
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let path = results_dir().join("fig9.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
