//! `solve_farm` — the batched Nash engine at ensemble scale.
//!
//! Solves a seeded ensemble of random subsidization games (10k by
//! default) through [`subcomp_exp::sweep::BatchSolver`]: one reusable
//! [`SolveWorkspace`] per worker, warm-started chains inside fixed-size
//! blocks, zero solver-loop heap allocation after warm-up (pinned by
//! `tests/alloc_free.rs`). Every equilibrium is certified through the
//! Theorem 3 KKT verifier, so the report doubles as an accuracy sweep.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin solve_farm [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--games N`     ensemble size (default 10000)
//!   `--threads T`   worker threads (default: available parallelism).
//!                   A comma list (`--threads 1,2,4,8`) switches to the
//!                   *scaling study*: the ensemble is solved once per
//!                   count, a thread-count → wall-clock table is printed,
//!                   and the run **asserts** that every deterministic
//!                   aggregate is bit-identical across counts (the
//!                   BatchSolver block-structure guarantee).
//!   `--seed S`      master seed (default 7)
//!   `--block B`     warm-start block size (default 32)
//!   `--lanes K`     route through the SoA lane engine with K-game lane
//!                   blocks (default: off — scalar warm-started chains).
//!                   Lane assignment is fixed by the ensemble definition,
//!                   so the bit-identity-across-threads contract holds in
//!                   this mode too.
//!   `--n-min A` / `--n-max B`  provider-count range (default 2..12)
//!
//! Bad arguments (zero threads/lanes/block, an inverted provider range,
//! a malformed value) exit with a one-line usage error on stderr.
//!
//! ## The million-game regime
//!
//! `--games 1000000 --lanes 16` is the supported ensemble ceiling,
//! tracked by the `nash/farm/lanes_1m` id in `BENCH_nash.json`. At the
//! measured farm medians the lane engine covers 1M games in roughly
//! 18 minutes single-threaded (~900 games/s, scaling near-linearly
//! with `--threads`); the scalar engine at ~5.5 µs-per-game-sweep
//! cost would need about 1.5 hours, which is why only the lane variant
//! is benchmarked at this scale. Memory stays flat in the game count —
//! the farm streams blocks through per-worker workspaces and keeps one
//! `Copy` stat per game — so 1M games is a time budget, not a memory
//! one. The deterministic aggregate (and its bit-identity across
//! thread counts) holds unchanged at this scale.
//!
//! Everything above the `timing` line is deterministic for a given
//! `(games, seed, block, lanes, n-min, n-max)` — thread count does not
//! change a single digit — so the report can be diffed across machines
//! and revisions; only the throughput lines vary.
//!
//! [`SolveWorkspace`]: subcomp_core::workspace::SolveWorkspace

use std::time::{Duration, Instant};
use subcomp_core::equilibrium::verify_equilibrium;
use subcomp_core::game::SubsidyGame;
use subcomp_core::welfare::welfare;
use subcomp_exp::scenarios::farm_game;
use subcomp_exp::sweep::BatchSolver;

#[derive(Debug)]
struct Args {
    games: usize,
    threads: Vec<usize>,
    seed: u64,
    block: usize,
    /// Lane-block size for the SoA engine; 0 = scalar mode.
    lanes: usize,
    n_min: usize,
    n_max: usize,
}

/// Parses and validates the flag list (everything after the binary name).
/// Every rejected input — malformed values, zero thread/lane/block counts,
/// an inverted provider range — comes back as a one-line message for the
/// usage error path; nothing in here panics.
fn parse_args_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args {
        games: 10_000,
        threads: vec![std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)],
        seed: 7,
        block: 32,
        lanes: 0,
        n_min: 2,
        n_max: 12,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        let positive = |what: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(0) => Err(format!("{what} must be at least 1 (got 0)")),
                Ok(v) => Ok(v),
                Err(_) => Err(format!("{what}: expected a positive integer, got {raw:?}")),
            }
        };
        match flag.as_str() {
            "--games" => {
                args.games = take("--games")?
                    .parse()
                    .map_err(|_| "--games: expected an integer".to_string())?;
            }
            "--threads" => {
                let raw = take("--threads")?;
                args.threads = raw
                    .split(',')
                    .map(|t| positive("--threads", t.trim().to_string()))
                    .collect::<Result<Vec<usize>, String>>()?;
                if args.threads.is_empty() {
                    return Err("--threads: need at least one count".to_string());
                }
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--block" => args.block = positive("--block", take("--block")?)?,
            "--lanes" => args.lanes = positive("--lanes", take("--lanes")?)?,
            "--n-min" => args.n_min = positive("--n-min", take("--n-min")?)?,
            "--n-max" => args.n_max = positive("--n-max", take("--n-max")?)?,
            other => return Err(format!("unknown flag {other} (see the module docs)")),
        }
    }
    if args.n_min > args.n_max {
        return Err(format!(
            "provider range is inverted: --n-min {} > --n-max {}",
            args.n_min, args.n_max
        ));
    }
    Ok(args)
}

fn parse_args() -> Args {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("solve_farm: {msg}");
            std::process::exit(2);
        }
    }
}

/// Deterministic per-item game parameters — the shared ensemble
/// definition in [`subcomp_exp::scenarios::farm_game`].
fn build_game(
    seed: u64,
    index: u64,
    n_min: usize,
    n_max: usize,
) -> subcomp_num::NumResult<SubsidyGame> {
    farm_game(seed, index, n_min, n_max)
}

/// What the farm keeps per game — small and `Copy`, so the reduction is
/// allocation-free too.
#[derive(Clone, Copy)]
struct FarmStat {
    n: usize,
    iterations: usize,
    residual: f64,
    max_kkt: f64,
    welfare: f64,
    theta: f64,
}

/// The deterministic aggregate of one farm run. Floats are compared by
/// bits: the scaling study's cross-thread-count assertion is *bit*
/// identity, not approximate agreement.
#[derive(Clone, Copy, PartialEq)]
struct FarmAggregate {
    solved: usize,
    failed: usize,
    providers: usize,
    iter_total: usize,
    iter_max: usize,
    residual_max_bits: u64,
    kkt_max_bits: u64,
    uncertified: usize,
    welfare_sum_bits: u64,
    theta_sum_bits: u64,
}

impl FarmAggregate {
    fn welfare_sum(&self) -> f64 {
        f64::from_bits(self.welfare_sum_bits)
    }
    fn theta_sum(&self) -> f64 {
        f64::from_bits(self.theta_sum_bits)
    }
    fn residual_max(&self) -> f64 {
        f64::from_bits(self.residual_max_bits)
    }
    fn kkt_max(&self) -> f64 {
        f64::from_bits(self.kkt_max_bits)
    }
}

/// Runs the ensemble on `threads` workers and reduces it.
fn run_farm(args: &Args, threads: usize) -> (FarmAggregate, Duration) {
    let indices: Vec<u64> = (0..args.games as u64).collect();
    let batch =
        BatchSolver::default().with_threads(threads).with_block(args.block).with_lanes(args.lanes);
    let start = Instant::now();
    let results = batch.run(
        &indices,
        |&k| build_game(args.seed, k, args.n_min, args.n_max),
        |game, ws, stats| {
            // NaN marks a certificate that could not even be computed —
            // counted and reported separately below, never dropped.
            let max_kkt = verify_equilibrium(game, ws.subsidies())
                .map(|report| report.max_kkt_residual)
                .unwrap_or(f64::NAN);
            FarmStat {
                n: game.n(),
                iterations: stats.iterations,
                residual: stats.residual,
                max_kkt,
                welfare: welfare(game, ws.state()),
                theta: ws.state().theta(),
            }
        },
    );
    let elapsed = start.elapsed();

    let mut agg = FarmAggregate {
        solved: 0,
        failed: 0,
        providers: 0,
        iter_total: 0,
        iter_max: 0,
        residual_max_bits: 0.0f64.to_bits(),
        kkt_max_bits: 0.0f64.to_bits(),
        uncertified: 0,
        welfare_sum_bits: 0,
        theta_sum_bits: 0,
    };
    let mut residual_max = 0.0f64;
    let mut kkt_max = 0.0f64;
    let mut welfare_sum = 0.0f64;
    let mut theta_sum = 0.0f64;
    for r in &results {
        match r {
            Ok(s) => {
                agg.solved += 1;
                agg.providers += s.n;
                agg.iter_total += s.iterations;
                agg.iter_max = agg.iter_max.max(s.iterations);
                residual_max = residual_max.max(s.residual);
                if s.max_kkt.is_finite() {
                    kkt_max = kkt_max.max(s.max_kkt);
                } else {
                    agg.uncertified += 1;
                }
                welfare_sum += s.welfare;
                theta_sum += s.theta;
            }
            Err(_) => agg.failed += 1,
        }
    }
    agg.residual_max_bits = residual_max.to_bits();
    agg.kkt_max_bits = kkt_max.to_bits();
    agg.welfare_sum_bits = welfare_sum.to_bits();
    agg.theta_sum_bits = theta_sum.to_bits();
    (agg, elapsed)
}

fn print_aggregate(args: &Args, agg: &FarmAggregate) {
    let engine = if args.lanes > 0 { format!("lanes={}", args.lanes) } else { "scalar".into() };
    println!(
        "config: games={} seed={} block={} engine={} n={}..{}",
        args.games, args.seed, args.block, engine, args.n_min, args.n_max
    );
    println!("solved: {} ({} failed)", agg.solved, agg.failed);
    println!("providers total: {}", agg.providers);
    println!(
        "sweeps: mean {:.4}, max {}",
        agg.iter_total as f64 / agg.solved.max(1) as f64,
        agg.iter_max
    );
    println!("max sweep residual: {:.3e}", agg.residual_max());
    println!(
        "max KKT residual (Theorem 3 certificate): {:.3e} ({} uncertified)",
        agg.kkt_max(),
        agg.uncertified
    );
    println!("welfare sum: {:.9}", agg.welfare_sum());
    println!("throughput sum: {:.9}", agg.theta_sum());
}

fn main() {
    let args = parse_args();

    if args.threads.len() == 1 {
        let threads = args.threads[0];
        println!("solve_farm: seeded random-game ensemble through the batched Nash engine");
        let (agg, elapsed) = run_farm(&args, threads);
        print_aggregate(&args, &agg);
        println!(
            "timing (non-deterministic): {:.2}s wall on {} thread(s), {:.1} games/s",
            elapsed.as_secs_f64(),
            threads,
            args.games as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        if agg.failed > 0 || agg.uncertified > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Scaling study: one run per thread count, identical work definition.
    println!("solve_farm scaling study: one ensemble per thread count");
    let runs: Vec<(usize, FarmAggregate, Duration)> = args
        .threads
        .iter()
        .map(|&t| {
            let (agg, elapsed) = run_farm(&args, t);
            (t, agg, elapsed)
        })
        .collect();
    let (_, reference, base) = &runs[0];
    print_aggregate(&args, reference);
    println!("\n  threads      wall [s]      games/s      speedup");
    for (t, agg, elapsed) in &runs {
        assert!(
            agg == reference,
            "thread count {t} changed a deterministic aggregate — the BatchSolver \
             block-structure guarantee is broken"
        );
        println!(
            "  {:>7}  {:>12.3}  {:>11.1}  {:>11.2}x",
            t,
            elapsed.as_secs_f64(),
            args.games as f64 / elapsed.as_secs_f64().max(1e-9),
            base.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
    }
    println!(
        "\nall {} runs bit-identical across thread counts (timing lines above are \
         non-deterministic)",
        runs.len()
    );
    if reference.failed > 0 || reference.uncertified > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(flags: &[&str]) -> Result<super::Args, String> {
        parse_args_from(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bad_arguments_are_usage_errors_not_panics() {
        // The cases ISSUE 6 names: each must come back as Err, never
        // panic, never be silently accepted.
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "4,0,2"]).is_err());
        assert!(parse(&["--lanes", "0"]).is_err());
        assert!(parse(&["--block", "0"]).is_err());
        assert!(parse(&["--n-min", "9", "--n-max", "3"]).is_err());
        // Malformed values and structural mistakes too.
        assert!(parse(&["--games", "many"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
        // Every message is a single line (the usage-error contract).
        for bad in [
            parse(&["--lanes", "0"]).unwrap_err(),
            parse(&["--n-min", "9", "--n-max", "3"]).unwrap_err(),
        ] {
            assert!(!bad.contains('\n'), "multi-line usage error: {bad:?}");
        }
    }

    #[test]
    fn good_arguments_parse() {
        let args =
            parse(&["--games", "64", "--threads", "1,2", "--lanes", "8", "--block", "4"]).unwrap();
        assert_eq!(args.games, 64);
        assert_eq!(args.threads, vec![1, 2]);
        assert_eq!(args.lanes, 8);
        assert_eq!(args.block, 4);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.lanes, 0, "scalar engine is the default");
        assert_eq!((defaults.n_min, defaults.n_max), (2, 12));
    }
}
