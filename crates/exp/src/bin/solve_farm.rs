//! `solve_farm` — the batched Nash engine at ensemble scale.
//!
//! Solves a seeded ensemble of random subsidization games (10k by
//! default) through [`subcomp_exp::sweep::BatchSolver`]: one reusable
//! [`SolveWorkspace`] per worker, warm-started chains inside fixed-size
//! blocks, zero solver-loop heap allocation after warm-up (pinned by
//! `tests/alloc_free.rs`). Every equilibrium is certified through the
//! Theorem 3 KKT verifier, so the report doubles as an accuracy sweep.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin solve_farm [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--games N`     ensemble size (default 10000)
//!   `--threads T`   worker threads (default: available parallelism)
//!   `--seed S`      master seed (default 7)
//!   `--block B`     warm-start block size (default 32)
//!   `--n-min A` / `--n-max B`  provider-count range (default 2..12)
//!
//! Everything above the `timing` line is deterministic for a given
//! `(games, seed, block, n-min, n-max)` — thread count does not change a
//! single digit — so the report can be diffed across machines and
//! revisions; only the throughput line varies.

use std::time::Instant;
use subcomp_core::equilibrium::verify_equilibrium;
use subcomp_core::game::SubsidyGame;
use subcomp_core::structure::SplitMix64;
use subcomp_core::welfare::welfare;
use subcomp_exp::scenarios::random_specs;
use subcomp_exp::sweep::BatchSolver;
use subcomp_model::aggregation::build_system;

struct Args {
    games: usize,
    threads: usize,
    seed: u64,
    block: usize,
    n_min: usize,
    n_max: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        games: 10_000,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        seed: 7,
        block: 32,
        n_min: 2,
        n_max: 12,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match flag.as_str() {
            "--games" => args.games = take("--games").parse().expect("--games: integer"),
            "--threads" => args.threads = take("--threads").parse().expect("--threads: integer"),
            "--seed" => args.seed = take("--seed").parse().expect("--seed: integer"),
            "--block" => args.block = take("--block").parse().expect("--block: integer"),
            "--n-min" => args.n_min = take("--n-min").parse().expect("--n-min: integer"),
            "--n-max" => args.n_max = take("--n-max").parse().expect("--n-max: integer"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    assert!(args.n_min >= 1 && args.n_max >= args.n_min, "need 1 <= n-min <= n-max");
    args
}

/// Deterministic per-item game parameters: provider count, price, cap and
/// capacity are drawn from a SplitMix64 stream keyed by `(seed, index)`.
fn build_game(
    seed: u64,
    index: u64,
    n_min: usize,
    n_max: usize,
) -> subcomp_num::NumResult<SubsidyGame> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let span = (n_max - n_min + 1) as u64;
    let n = n_min + (rng.next_u64() % span) as usize;
    let specs = random_specs(n, rng.next_u64());
    let mu = 0.5 + 1.5 * rng.next_f64();
    let p = 0.3 + 0.9 * rng.next_f64();
    let q = 0.2 + 0.8 * rng.next_f64();
    SubsidyGame::new(build_system(&specs, mu)?, p, q)
}

/// What the farm keeps per game — small and `Copy`, so the reduction is
/// allocation-free too.
#[derive(Clone, Copy)]
struct FarmStat {
    n: usize,
    iterations: usize,
    residual: f64,
    max_kkt: f64,
    welfare: f64,
    theta: f64,
}

fn main() {
    let args = parse_args();
    let indices: Vec<u64> = (0..args.games as u64).collect();
    let batch = BatchSolver::default().with_threads(args.threads).with_block(args.block);

    let start = Instant::now();
    let results = batch.run(
        &indices,
        |&k| build_game(args.seed, k, args.n_min, args.n_max),
        |game, ws, stats| {
            // NaN marks a certificate that could not even be computed —
            // counted and reported separately below, never dropped.
            let max_kkt = verify_equilibrium(game, ws.subsidies())
                .map(|report| report.max_kkt_residual)
                .unwrap_or(f64::NAN);
            FarmStat {
                n: game.n(),
                iterations: stats.iterations,
                residual: stats.residual,
                max_kkt,
                welfare: welfare(game, ws.state()),
                theta: ws.state().theta(),
            }
        },
    );
    let elapsed = start.elapsed();

    let mut solved = 0usize;
    let mut failed = 0usize;
    let mut providers = 0usize;
    let mut iter_total = 0usize;
    let mut iter_max = 0usize;
    let mut residual_max = 0.0f64;
    let mut kkt_max = 0.0f64;
    let mut uncertified = 0usize;
    let mut welfare_sum = 0.0f64;
    let mut theta_sum = 0.0f64;
    for r in &results {
        match r {
            Ok(s) => {
                solved += 1;
                providers += s.n;
                iter_total += s.iterations;
                iter_max = iter_max.max(s.iterations);
                residual_max = residual_max.max(s.residual);
                if s.max_kkt.is_finite() {
                    kkt_max = kkt_max.max(s.max_kkt);
                } else {
                    uncertified += 1;
                }
                welfare_sum += s.welfare;
                theta_sum += s.theta;
            }
            Err(_) => failed += 1,
        }
    }

    println!("solve_farm: seeded random-game ensemble through the batched Nash engine");
    println!(
        "config: games={} seed={} block={} n={}..{}",
        args.games, args.seed, args.block, args.n_min, args.n_max
    );
    println!("solved: {solved} ({failed} failed)");
    println!("providers total: {providers}");
    println!("sweeps: mean {:.4}, max {iter_max}", iter_total as f64 / solved.max(1) as f64);
    println!("max sweep residual: {residual_max:.3e}");
    println!("max KKT residual (Theorem 3 certificate): {kkt_max:.3e} ({uncertified} uncertified)");
    println!("welfare sum: {welfare_sum:.9}");
    println!("throughput sum: {theta_sum:.9}");
    println!(
        "timing (non-deterministic): {:.2}s wall on {} thread(s), {:.1} games/s",
        elapsed.as_secs_f64(),
        args.threads,
        args.games as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if failed > 0 || uncertified > 0 {
        std::process::exit(1);
    }
}
