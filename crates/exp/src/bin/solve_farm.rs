//! `solve_farm` — the batched Nash engine at ensemble scale.
//!
//! Solves a seeded ensemble of random subsidization games (10k by
//! default) through [`subcomp_exp::sweep::BatchSolver`]: one reusable
//! [`SolveWorkspace`] per worker, warm-started chains inside fixed-size
//! blocks, zero solver-loop heap allocation after warm-up (pinned by
//! `tests/alloc_free.rs`). Every equilibrium is certified through the
//! Theorem 3 KKT verifier, so the report doubles as an accuracy sweep.
//!
//! Usage:
//!   `cargo run --release -p subcomp-exp --bin solve_farm [-- OPTIONS]`
//!
//! Options (all with defaults):
//!   `--games N`     ensemble size (default 10000)
//!   `--threads T`   worker threads (default: available parallelism).
//!                   A comma list (`--threads 1,2,4,8`) switches to the
//!                   *scaling study*: the ensemble is solved once per
//!                   count, a thread-count → wall-clock table is printed,
//!                   and the run **asserts** that every deterministic
//!                   aggregate is bit-identical across counts (the
//!                   BatchSolver block-structure guarantee).
//!   `--seed S`      master seed (default 7)
//!   `--block B`     warm-start block size (default 32)
//!   `--n-min A` / `--n-max B`  provider-count range (default 2..12)
//!
//! Everything above the `timing` line is deterministic for a given
//! `(games, seed, block, n-min, n-max)` — thread count does not change a
//! single digit — so the report can be diffed across machines and
//! revisions; only the throughput lines vary.
//!
//! [`SolveWorkspace`]: subcomp_core::workspace::SolveWorkspace

use std::time::{Duration, Instant};
use subcomp_core::equilibrium::verify_equilibrium;
use subcomp_core::game::SubsidyGame;
use subcomp_core::structure::SplitMix64;
use subcomp_core::welfare::welfare;
use subcomp_exp::scenarios::random_specs;
use subcomp_exp::sweep::BatchSolver;
use subcomp_model::aggregation::build_system;

struct Args {
    games: usize,
    threads: Vec<usize>,
    seed: u64,
    block: usize,
    n_min: usize,
    n_max: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        games: 10_000,
        threads: vec![std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)],
        seed: 7,
        block: 32,
        n_min: 2,
        n_max: 12,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match flag.as_str() {
            "--games" => args.games = take("--games").parse().expect("--games: integer"),
            "--threads" => {
                args.threads = take("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: integer or comma list"))
                    .collect();
                assert!(!args.threads.is_empty(), "--threads: need at least one count");
            }
            "--seed" => args.seed = take("--seed").parse().expect("--seed: integer"),
            "--block" => args.block = take("--block").parse().expect("--block: integer"),
            "--n-min" => args.n_min = take("--n-min").parse().expect("--n-min: integer"),
            "--n-max" => args.n_max = take("--n-max").parse().expect("--n-max: integer"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    assert!(args.n_min >= 1 && args.n_max >= args.n_min, "need 1 <= n-min <= n-max");
    args
}

/// Deterministic per-item game parameters: provider count, price, cap and
/// capacity are drawn from a SplitMix64 stream keyed by `(seed, index)`.
fn build_game(
    seed: u64,
    index: u64,
    n_min: usize,
    n_max: usize,
) -> subcomp_num::NumResult<SubsidyGame> {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let span = (n_max - n_min + 1) as u64;
    let n = n_min + (rng.next_u64() % span) as usize;
    let specs = random_specs(n, rng.next_u64());
    let mu = 0.5 + 1.5 * rng.next_f64();
    let p = 0.3 + 0.9 * rng.next_f64();
    let q = 0.2 + 0.8 * rng.next_f64();
    SubsidyGame::new(build_system(&specs, mu)?, p, q)
}

/// What the farm keeps per game — small and `Copy`, so the reduction is
/// allocation-free too.
#[derive(Clone, Copy)]
struct FarmStat {
    n: usize,
    iterations: usize,
    residual: f64,
    max_kkt: f64,
    welfare: f64,
    theta: f64,
}

/// The deterministic aggregate of one farm run. Floats are compared by
/// bits: the scaling study's cross-thread-count assertion is *bit*
/// identity, not approximate agreement.
#[derive(Clone, Copy, PartialEq)]
struct FarmAggregate {
    solved: usize,
    failed: usize,
    providers: usize,
    iter_total: usize,
    iter_max: usize,
    residual_max_bits: u64,
    kkt_max_bits: u64,
    uncertified: usize,
    welfare_sum_bits: u64,
    theta_sum_bits: u64,
}

impl FarmAggregate {
    fn welfare_sum(&self) -> f64 {
        f64::from_bits(self.welfare_sum_bits)
    }
    fn theta_sum(&self) -> f64 {
        f64::from_bits(self.theta_sum_bits)
    }
    fn residual_max(&self) -> f64 {
        f64::from_bits(self.residual_max_bits)
    }
    fn kkt_max(&self) -> f64 {
        f64::from_bits(self.kkt_max_bits)
    }
}

/// Runs the ensemble on `threads` workers and reduces it.
fn run_farm(args: &Args, threads: usize) -> (FarmAggregate, Duration) {
    let indices: Vec<u64> = (0..args.games as u64).collect();
    let batch = BatchSolver::default().with_threads(threads).with_block(args.block);
    let start = Instant::now();
    let results = batch.run(
        &indices,
        |&k| build_game(args.seed, k, args.n_min, args.n_max),
        |game, ws, stats| {
            // NaN marks a certificate that could not even be computed —
            // counted and reported separately below, never dropped.
            let max_kkt = verify_equilibrium(game, ws.subsidies())
                .map(|report| report.max_kkt_residual)
                .unwrap_or(f64::NAN);
            FarmStat {
                n: game.n(),
                iterations: stats.iterations,
                residual: stats.residual,
                max_kkt,
                welfare: welfare(game, ws.state()),
                theta: ws.state().theta(),
            }
        },
    );
    let elapsed = start.elapsed();

    let mut agg = FarmAggregate {
        solved: 0,
        failed: 0,
        providers: 0,
        iter_total: 0,
        iter_max: 0,
        residual_max_bits: 0.0f64.to_bits(),
        kkt_max_bits: 0.0f64.to_bits(),
        uncertified: 0,
        welfare_sum_bits: 0,
        theta_sum_bits: 0,
    };
    let mut residual_max = 0.0f64;
    let mut kkt_max = 0.0f64;
    let mut welfare_sum = 0.0f64;
    let mut theta_sum = 0.0f64;
    for r in &results {
        match r {
            Ok(s) => {
                agg.solved += 1;
                agg.providers += s.n;
                agg.iter_total += s.iterations;
                agg.iter_max = agg.iter_max.max(s.iterations);
                residual_max = residual_max.max(s.residual);
                if s.max_kkt.is_finite() {
                    kkt_max = kkt_max.max(s.max_kkt);
                } else {
                    agg.uncertified += 1;
                }
                welfare_sum += s.welfare;
                theta_sum += s.theta;
            }
            Err(_) => agg.failed += 1,
        }
    }
    agg.residual_max_bits = residual_max.to_bits();
    agg.kkt_max_bits = kkt_max.to_bits();
    agg.welfare_sum_bits = welfare_sum.to_bits();
    agg.theta_sum_bits = theta_sum.to_bits();
    (agg, elapsed)
}

fn print_aggregate(args: &Args, agg: &FarmAggregate) {
    println!(
        "config: games={} seed={} block={} n={}..{}",
        args.games, args.seed, args.block, args.n_min, args.n_max
    );
    println!("solved: {} ({} failed)", agg.solved, agg.failed);
    println!("providers total: {}", agg.providers);
    println!(
        "sweeps: mean {:.4}, max {}",
        agg.iter_total as f64 / agg.solved.max(1) as f64,
        agg.iter_max
    );
    println!("max sweep residual: {:.3e}", agg.residual_max());
    println!(
        "max KKT residual (Theorem 3 certificate): {:.3e} ({} uncertified)",
        agg.kkt_max(),
        agg.uncertified
    );
    println!("welfare sum: {:.9}", agg.welfare_sum());
    println!("throughput sum: {:.9}", agg.theta_sum());
}

fn main() {
    let args = parse_args();

    if args.threads.len() == 1 {
        let threads = args.threads[0];
        println!("solve_farm: seeded random-game ensemble through the batched Nash engine");
        let (agg, elapsed) = run_farm(&args, threads);
        print_aggregate(&args, &agg);
        println!(
            "timing (non-deterministic): {:.2}s wall on {} thread(s), {:.1} games/s",
            elapsed.as_secs_f64(),
            threads,
            args.games as f64 / elapsed.as_secs_f64().max(1e-9)
        );
        if agg.failed > 0 || agg.uncertified > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Scaling study: one run per thread count, identical work definition.
    println!("solve_farm scaling study: one ensemble per thread count");
    let runs: Vec<(usize, FarmAggregate, Duration)> = args
        .threads
        .iter()
        .map(|&t| {
            let (agg, elapsed) = run_farm(&args, t);
            (t, agg, elapsed)
        })
        .collect();
    let (_, reference, base) = &runs[0];
    print_aggregate(&args, reference);
    println!("\n  threads      wall [s]      games/s      speedup");
    for (t, agg, elapsed) in &runs {
        assert!(
            agg == reference,
            "thread count {t} changed a deterministic aggregate — the BatchSolver \
             block-structure guarantee is broken"
        );
        println!(
            "  {:>7}  {:>12.3}  {:>11.1}  {:>11.2}x",
            t,
            elapsed.as_secs_f64(),
            args.games as f64 / elapsed.as_secs_f64().max(1e-9),
            base.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)
        );
    }
    println!(
        "\nall {} runs bit-identical across thread counts (timing lines above are \
         non-deterministic)",
        runs.len()
    );
    if reference.failed > 0 || reference.uncertified > 0 {
        std::process::exit(1);
    }
}
