//! Regenerates paper Figure 7 (run: `cargo run -p subcomp-exp --bin fig7`).
use subcomp_exp::figures::{fig7, panel};
use subcomp_exp::report::results_dir;

fn main() {
    let panel = panel::compute(41, 5).expect("panel computes");
    let fig = fig7::compute(&panel);
    println!("{}", fig.render());
    match fig.check_shape() {
        Ok(()) => println!("shape check: OK (R, W rise with q; W falls with p; R single-peaked)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    let (p_star, r_star) = fig.revenue_peak(fig.qs.len() - 1);
    println!("revenue peak at q = {}: p = {p_star:.3}, R = {r_star:.4}", fig.qs[fig.qs.len() - 1]);
    let path = results_dir().join("fig7.csv");
    fig.write_csv(&path).expect("write csv");
    println!("csv written to {}", path.display());
}
