//! The equilibrium server: equilibrium-as-a-service over warm workspaces.
//!
//! Batch entry points (`BatchSolver`, the continuation grids) answer "solve
//! these N games"; the production framing of the paper's market — an ISP
//! tracking millions of users while prices, caps, capacity and provider
//! profitabilities drift — is a *query stream*: small parameter writes
//! interleaved with equilibrium and sensitivity reads. [`EquilibriumServer`]
//! is that layer, in process:
//!
//! * it **owns the market**: a resident [`SubsidyGame`] (precompiled
//!   congestion kernel included) mutated in place by [`Axis`] writes — no
//!   rebuild per request — plus full-game submissions via
//!   [`EquilibriumServer::submit`];
//! * it **owns a pool of warm [`SolveWorkspace`]s**, so every solve starts
//!   from the previous iterate of its slot (or a Theorem 6 tangent
//!   extrapolation when a stored sensitivity admits one — see
//!   [`TangentPolicy`]) instead of from zero;
//! * it **caches by canonical fingerprint** ([`fingerprint`]): a repeated
//!   query returns an [`Arc`] clone of the stored [`EqSnapshot`] —
//!   O(lookup), allocation-free, bit-identical to the solve that produced
//!   it.
//!
//! Replies carry their [`Source`] (cache hit / tangent / warm / cold), so
//! callers, benches and tests can audit exactly which path served them.
//! The whole service is deterministic: same construction, same request
//! stream, same replies — the property the [`loadgen`] replay tests pin.
//!
//! [`fingerprint`]: fingerprint::fingerprint

pub mod cache;
pub mod fingerprint;
pub mod loadgen;
pub mod sharded;

use std::sync::Arc;
use subcomp_core::game::{Axis, SubsidyGame};
use subcomp_core::nash::{NashSolver, WarmStart};
use subcomp_core::sensitivity::Sensitivity;
use subcomp_core::snapshot::{EqSnapshot, TangentPolicy};
use subcomp_core::workspace::SolveWorkspace;
use subcomp_num::error::{NumError, NumResult};

pub use cache::{CacheStats, EqCache};
pub use fingerprint::fingerprint;
pub use loadgen::{generate, generate_multi, LoadGenConfig};
pub use sharded::{ShardReport, ShardedConfig, ShardedServer};

/// One request in a client stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Write `value` onto a parameter axis of the resident market.
    Update {
        /// The parameter to write.
        axis: Axis,
        /// The new value.
        value: f64,
    },
    /// Read the equilibrium of the market as currently parameterized.
    Equilibrium,
    /// Read the equilibrium plus its directional sensitivity `∂s*/∂axis`.
    Sensitivity {
        /// The direction to differentiate along.
        axis: Axis,
    },
}

/// Which path produced an equilibrium answer, from cheapest to dearest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served lock-free out of the shared snapshot index by the sharded
    /// router — the owning shard's solver state was never consulted.
    LockFree,
    /// Fingerprint cache hit — no solve at all.
    CacheHit,
    /// Solved, seeded by a Theorem 6 tangent extrapolation.
    Tangent,
    /// Solved, seeded by the slot workspace's previous iterate.
    Warm,
    /// Solved from the zero profile.
    Cold,
}

/// A server reply, paired with the [`Request`] variant that caused it.
#[derive(Debug, Clone)]
pub enum Reply {
    /// The axis write was validated and applied.
    Updated {
        /// The axis written.
        axis: Axis,
        /// The value now in force.
        value: f64,
    },
    /// An equilibrium answer.
    Equilibrium {
        /// The (shared, immutable) solved state.
        snap: Arc<EqSnapshot>,
        /// Which path produced it.
        source: Source,
    },
    /// An equilibrium answer plus a directional derivative.
    Sensitivity {
        /// `∂s*/∂axis` at the answered equilibrium.
        ds: Vec<f64>,
        /// The equilibrium the derivative was taken at.
        snap: Arc<EqSnapshot>,
        /// Which path produced the equilibrium.
        source: Source,
    },
}

/// Per-source answer counts and request totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Axis writes applied.
    pub updates: u64,
    /// Equilibrium answers (including those inside sensitivity replies).
    pub equilibria: u64,
    /// Sensitivity answers.
    pub sensitivities: u64,
    /// Answers served from the cache.
    pub cache_hits: u64,
    /// Solves seeded by tangent extrapolation.
    pub tangent_solves: u64,
    /// Solves seeded from a warm slot iterate.
    pub warm_solves: u64,
    /// Solves from the zero profile.
    pub cold_solves: u64,
}

/// A stored sensitivity that may seed the next solve along its axis.
struct TangentSeed {
    axis: Axis,
    at: f64,
    ds: Vec<f64>,
    base_key: u64,
}

/// What has been written since the last answered equilibrium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dirty {
    Clean,
    One(Axis),
    Many,
}

/// The resident market service. See the module docs for the design.
pub struct EquilibriumServer {
    game: SubsidyGame,
    solver: NashSolver,
    pool: Vec<SolveWorkspace>,
    /// Fingerprint of the equilibrium whose iterate each slot holds.
    slot_state: Vec<Option<u64>>,
    cache: EqCache,
    tangent: TangentPolicy,
    seed: Option<TangentSeed>,
    /// Fingerprint at the last answered equilibrium.
    base: Option<u64>,
    dirty: Dirty,
    stats: ServerStats,
}

impl std::fmt::Debug for EquilibriumServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquilibriumServer")
            .field("n", &self.game.n())
            .field("pool", &self.pool.len())
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .finish()
    }
}

impl EquilibriumServer {
    /// A server over `game` with `pool_size` warm workspaces and a
    /// `cache_capacity`-entry fingerprint cache.
    pub fn new(game: SubsidyGame, pool_size: usize, cache_capacity: usize) -> EquilibriumServer {
        let pool_size = pool_size.max(1);
        let pool = (0..pool_size).map(|_| SolveWorkspace::for_game(&game)).collect();
        EquilibriumServer {
            game,
            solver: NashSolver::default().with_tol(1e-10),
            pool,
            slot_state: vec![None; pool_size],
            cache: EqCache::new(cache_capacity),
            tangent: TangentPolicy::default(),
            seed: None,
            base: None,
            dirty: Dirty::Many,
            stats: ServerStats::default(),
        }
    }

    /// Replaces the solver configuration (builder style).
    pub fn with_solver(mut self, solver: NashSolver) -> EquilibriumServer {
        self.solver = solver;
        self
    }

    /// Replaces the tangent admission policy (builder style).
    pub fn with_tangent_policy(mut self, policy: TangentPolicy) -> EquilibriumServer {
        self.tangent = policy;
        self
    }

    /// The resident market as currently parameterized.
    pub fn game(&self) -> &SubsidyGame {
        &self.game
    }

    /// Request/answer counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Cache counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dispatches one request.
    pub fn serve(&mut self, req: Request) -> NumResult<Reply> {
        match req {
            Request::Update { axis, value } => {
                self.update(axis, value)?;
                Ok(Reply::Updated { axis, value })
            }
            Request::Equilibrium => {
                let (snap, source) = self.equilibrium()?;
                Ok(Reply::Equilibrium { snap, source })
            }
            Request::Sensitivity { axis } => {
                let (ds, snap, source) = self.sensitivity(axis)?;
                Ok(Reply::Sensitivity { ds, snap, source })
            }
        }
    }

    /// Applies a validated axis write to the resident market. No solve
    /// happens until the next read.
    pub fn update(&mut self, axis: Axis, value: f64) -> NumResult<()> {
        axis.apply(&mut self.game, value)?;
        self.stats.updates += 1;
        self.dirty = match self.dirty {
            Dirty::Clean => Dirty::One(axis),
            Dirty::One(a) if a == axis => Dirty::One(axis),
            _ => Dirty::Many,
        };
        Ok(())
    }

    /// Replaces the resident market wholesale (a full-game submission).
    /// Workspace shapes adapt on the next solve; the cache is kept — a
    /// submission that fingerprints to a cached market stays O(lookup).
    pub fn submit(&mut self, game: SubsidyGame) -> NumResult<(Arc<EqSnapshot>, Source)> {
        self.game = game;
        self.seed = None;
        self.base = None;
        self.dirty = Dirty::Many;
        self.equilibrium()
    }

    /// Answers the equilibrium of the market as currently parameterized.
    pub fn equilibrium(&mut self) -> NumResult<(Arc<EqSnapshot>, Source)> {
        let key = fingerprint(&self.game)?;
        self.stats.equilibria += 1;
        if let Some(snap) = self.cache.get(key) {
            self.stats.cache_hits += 1;
            self.base = Some(key);
            self.dirty = Dirty::Clean;
            return Ok((snap, Source::CacheHit));
        }
        let slot = self.game.n() % self.pool.len();
        // Pick the best admissible warm start, cheapest-to-verify last:
        // a stored tangent along the single dirty axis, else the slot's
        // previous iterate (only if its shape matches), else cold.
        let tangent_dtheta = self.seed.as_ref().and_then(|seed| {
            let applicable = self.base == Some(seed.base_key)
                && self.dirty == Dirty::One(seed.axis)
                && self.slot_state[slot] == Some(seed.base_key);
            if !applicable {
                return None;
            }
            let dtheta = seed.axis.value(&self.game) - seed.at;
            self.tangent.admits(&seed.ds, dtheta).then_some(dtheta)
        });
        let ws = &mut self.pool[slot];
        let (start, source) = match tangent_dtheta {
            Some(dtheta) => {
                let seed = self.seed.as_ref().expect("checked above");
                (WarmStart::Tangent { ds_dtheta: &seed.ds, dtheta }, Source::Tangent)
            }
            None if self.slot_state[slot].is_some() && ws.subsidies().len() == self.game.n() => {
                (WarmStart::Previous, Source::Warm)
            }
            None => (WarmStart::Zero, Source::Cold),
        };
        let stats = self.solver.solve_into(&self.game, start, ws)?;
        if !stats.converged {
            return Err(NumError::MaxIterations {
                max_iter: stats.iterations,
                residual: stats.residual,
            });
        }
        match source {
            Source::Tangent => self.stats.tangent_solves += 1,
            Source::Warm => self.stats.warm_solves += 1,
            _ => self.stats.cold_solves += 1,
        }
        let mut arc = self.cache.blank();
        Arc::get_mut(&mut arc)
            .expect("blank snapshots are unique")
            .capture_into(&self.game, ws, stats);
        let reply = Arc::clone(&arc);
        self.cache.insert(key, arc);
        self.slot_state[slot] = Some(key);
        self.base = Some(key);
        self.dirty = Dirty::Clean;
        Ok((reply, source))
    }

    /// Answers the equilibrium plus `∂s*/∂axis`, and stores the derivative
    /// as a tangent seed for subsequent small writes along `axis`.
    pub fn sensitivity(&mut self, axis: Axis) -> NumResult<(Vec<f64>, Arc<EqSnapshot>, Source)> {
        let (snap, source) = self.equilibrium()?;
        let ds = Sensitivity::directional(&self.game, snap.subsidies(), axis)?;
        self.stats.sensitivities += 1;
        self.seed = Some(TangentSeed {
            axis,
            at: axis.value(&self.game),
            ds: ds.clone(),
            base_key: self.base.expect("equilibrium just answered"),
        });
        Ok((ds, snap, source))
    }

    /// Forgets all warm state (slot iterates, tangent seed, dirty
    /// tracking) without touching the cache — benches use this to force
    /// cold solves.
    pub fn cool(&mut self) {
        self.slot_state.iter_mut().for_each(|s| *s = None);
        self.seed = None;
        self.base = None;
        self.dirty = Dirty::Many;
    }

    /// Drops every cached equilibrium (retiring snapshots for recycling).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// The cached snapshot for the market **as currently parameterized**,
    /// if resident — counterless, recency-free introspection (the sharded
    /// tier's identity tests compare it against lock-free reads). `None`
    /// when the current parameterization is uncached or unfingerprintable.
    pub fn peek_current(&self) -> Option<Arc<EqSnapshot>> {
        let key = fingerprint(&self.game).ok()?;
        self.cache.peek(key)
    }
}

/// p50/p99/mean over one latency window, in the unit of the samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean latency (its inverse is throughput).
    pub mean: f64,
    /// Number of samples summarized.
    pub count: usize,
}

/// Summarizes a latency window. A zero-request window (e.g. a warmup
/// phase that saw no traffic) is an explicit [`NumError::Empty`], not a
/// panic — callers print "n/a" and move on.
pub fn summarize_latencies(samples: &[f64]) -> NumResult<LatencySummary> {
    Ok(LatencySummary {
        p50: subcomp_num::stats::quantile(samples, 0.50)?,
        p99: subcomp_num::stats::quantile(samples, 0.99)?,
        mean: subcomp_num::stats::mean(samples)?,
        count: samples.len(),
    })
}
