//! The equilibrium server: equilibrium-as-a-service over warm workspaces.
//!
//! Batch entry points (`BatchSolver`, the continuation grids) answer "solve
//! these N games"; the production framing of the paper's market — an ISP
//! tracking millions of users while prices, caps, capacity and provider
//! profitabilities drift — is a *query stream*: small parameter writes
//! interleaved with equilibrium and sensitivity reads. [`EquilibriumServer`]
//! is that layer, in process:
//!
//! * it **owns the market**: a resident [`SubsidyGame`] (precompiled
//!   congestion kernel included) mutated in place by [`Axis`] writes — no
//!   rebuild per request — plus full-game submissions via
//!   [`EquilibriumServer::submit`];
//! * it **owns a pool of warm [`SolveWorkspace`]s**, so every solve starts
//!   from the previous iterate of its slot (or a Theorem 6 tangent
//!   extrapolation when a stored sensitivity admits one — see
//!   [`TangentPolicy`]) instead of from zero;
//! * it **caches by canonical fingerprint** ([`fingerprint`]): a repeated
//!   query returns an [`Arc`] clone of the stored [`EqSnapshot`] —
//!   O(lookup), allocation-free, bit-identical to the solve that produced
//!   it.
//!
//! Replies carry their [`Source`] (cache hit / tangent / warm / cold), so
//! callers, benches and tests can audit exactly which path served them.
//! The whole service is deterministic: same construction, same request
//! stream, same replies — the property the [`loadgen`] replay tests pin.
//!
//! [`fingerprint`]: fingerprint::fingerprint

pub mod cache;
pub mod faults;
pub mod fingerprint;
pub mod loadgen;
pub mod sharded;

use std::sync::Arc;
use subcomp_core::game::{Axis, SubsidyGame};
use subcomp_core::nash::{NashSolver, WarmStart};
use subcomp_core::sensitivity::{ActiveSet, Sensitivity};
use subcomp_core::snapshot::{EqSnapshot, TangentPolicy};
use subcomp_core::workspace::{SolveBudget, SolveWorkspace};
use subcomp_num::error::{NumError, NumResult};

pub use cache::{CacheStats, EqCache};
pub use faults::{
    error_kind, fold_error, fold_reply, poison_game, run_chaos, ChaosConfig, ChaosReport,
    FaultEvent, FaultKind, FaultPlan,
};
pub use fingerprint::fingerprint;
pub use loadgen::{generate, generate_multi, LoadGenConfig};
pub use sharded::{Sabotage, ShardReport, ShardedConfig, ShardedServer};

/// Convenience alias for the serving layer's fallible entry points.
pub type ServeResult<T> = Result<T, ServeError>;

/// A typed serving failure. Every variant is *recoverable* from the
/// client's perspective: the server stays resident and keeps answering
/// subsequent requests.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The owning shard died while this request was in flight; it has
    /// been respawned and its markets rehydrated, but this request was
    /// lost. Retrying is safe.
    ShardRestarted {
        /// The shard that was restarted.
        shard: usize,
    },
    /// The market is quarantined after repeated budget blowouts; reads
    /// are refused until a [`EquilibriumServer::submit`] heals it.
    Quarantined {
        /// Consecutive budget blowouts recorded when quarantine tripped.
        strikes: u32,
    },
    /// The underlying numerical/validation error.
    Num(NumError),
}

impl From<NumError> for ServeError {
    fn from(err: NumError) -> ServeError {
        ServeError::Num(err)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShardRestarted { shard } => {
                write!(f, "shard {shard} restarted while the request was in flight")
            }
            ServeError::Quarantined { strikes } => {
                write!(f, "market quarantined after {strikes} budget blowouts (submit to heal)")
            }
            ServeError::Num(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One request in a client stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Write `value` onto a parameter axis of the resident market.
    Update {
        /// The parameter to write.
        axis: Axis,
        /// The new value.
        value: f64,
    },
    /// Read the equilibrium of the market as currently parameterized.
    Equilibrium,
    /// Read the equilibrium plus its directional sensitivity `∂s*/∂axis`.
    Sensitivity {
        /// The direction to differentiate along.
        axis: Axis,
    },
}

/// Which path produced an equilibrium answer, from cheapest to dearest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served lock-free out of the shared snapshot index by the sharded
    /// router — the owning shard's solver state was never consulted.
    LockFree,
    /// Fingerprint cache hit — no solve at all.
    CacheHit,
    /// Solved, seeded by a Theorem 6 tangent extrapolation.
    Tangent,
    /// Solved, seeded by the slot workspace's previous iterate.
    Warm,
    /// Solved from the zero profile.
    Cold,
    /// A [`SolveBudget`] fired before convergence: the answer is the best
    /// iterate with its residual (see the snapshot's
    /// [`stats`](EqSnapshot::stats)), never cached, never published.
    Partial,
}

/// A server reply, paired with the [`Request`] variant that caused it.
#[derive(Debug, Clone)]
pub enum Reply {
    /// The axis write was validated and applied.
    Updated {
        /// The axis written.
        axis: Axis,
        /// The value now in force.
        value: f64,
    },
    /// An equilibrium answer.
    Equilibrium {
        /// The (shared, immutable) solved state.
        snap: Arc<EqSnapshot>,
        /// Which path produced it.
        source: Source,
    },
    /// An equilibrium answer plus a directional derivative.
    Sensitivity {
        /// `∂s*/∂axis` at the answered equilibrium.
        ds: Vec<f64>,
        /// The equilibrium the derivative was taken at.
        snap: Arc<EqSnapshot>,
        /// Which path produced the equilibrium.
        source: Source,
    },
    /// A sensitivity read landed on a *degenerate* equilibrium (a pinned
    /// provider with `u_i ≈ 0`): no one-sided derivative is served, but
    /// the request succeeds with the equilibrium and its active-set
    /// partition — the typed, recoverable form of what used to be a
    /// failed request.
    Degenerate {
        /// The `N⁻ / Ñ / N⁺` partition at the answered equilibrium.
        active_set: ActiveSet,
        /// The (degenerate) equilibrium itself.
        snap: Arc<EqSnapshot>,
        /// Which path produced the equilibrium.
        source: Source,
    },
}

/// Per-source answer counts and request totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Axis writes applied.
    pub updates: u64,
    /// Equilibrium answers (including those inside sensitivity replies).
    pub equilibria: u64,
    /// Sensitivity answers.
    pub sensitivities: u64,
    /// Answers served from the cache.
    pub cache_hits: u64,
    /// Solves seeded by tangent extrapolation.
    pub tangent_solves: u64,
    /// Solves seeded from a warm slot iterate.
    pub warm_solves: u64,
    /// Solves from the zero profile.
    pub cold_solves: u64,
    /// Budget-limited solves answered as [`Source::Partial`].
    pub partial_solves: u64,
}

/// A stored sensitivity that may seed the next solve along its axis.
struct TangentSeed {
    axis: Axis,
    at: f64,
    ds: Vec<f64>,
    base_key: u64,
}

/// What has been written since the last answered equilibrium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dirty {
    Clean,
    One(Axis),
    Many,
}

/// The resident market service. See the module docs for the design.
pub struct EquilibriumServer {
    game: SubsidyGame,
    solver: NashSolver,
    pool: Vec<SolveWorkspace>,
    /// Fingerprint of the equilibrium whose iterate each slot holds.
    slot_state: Vec<Option<u64>>,
    cache: EqCache,
    tangent: TangentPolicy,
    seed: Option<TangentSeed>,
    /// Fingerprint at the last answered equilibrium.
    base: Option<u64>,
    dirty: Dirty,
    stats: ServerStats,
    /// Deterministic per-solve sweep budget (unlimited by default).
    budget: SolveBudget,
    /// Consecutive budget blowouts since the last full answer.
    strikes: u32,
    /// Strikes at which the market quarantines itself.
    quarantine_after: u32,
    quarantined: bool,
}

/// Consecutive budget blowouts before a market quarantines itself.
pub const QUARANTINE_AFTER: u32 = 3;

impl std::fmt::Debug for EquilibriumServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquilibriumServer")
            .field("n", &self.game.n())
            .field("pool", &self.pool.len())
            .field("cache", &self.cache)
            .field("stats", &self.stats)
            .finish()
    }
}

impl EquilibriumServer {
    /// A server over `game` with `pool_size` warm workspaces and a
    /// `cache_capacity`-entry fingerprint cache.
    pub fn new(game: SubsidyGame, pool_size: usize, cache_capacity: usize) -> EquilibriumServer {
        let pool_size = pool_size.max(1);
        let pool = (0..pool_size).map(|_| SolveWorkspace::for_game(&game)).collect();
        EquilibriumServer {
            game,
            solver: NashSolver::default().with_tol(1e-10),
            pool,
            slot_state: vec![None; pool_size],
            cache: EqCache::new(cache_capacity),
            tangent: TangentPolicy::default(),
            seed: None,
            base: None,
            dirty: Dirty::Many,
            stats: ServerStats::default(),
            budget: SolveBudget::unlimited(),
            strikes: 0,
            quarantine_after: QUARANTINE_AFTER,
            quarantined: false,
        }
    }

    /// Replaces the solver configuration (builder style).
    pub fn with_solver(mut self, solver: NashSolver) -> EquilibriumServer {
        self.solver = solver;
        self
    }

    /// Replaces the tangent admission policy (builder style).
    pub fn with_tangent_policy(mut self, policy: TangentPolicy) -> EquilibriumServer {
        self.tangent = policy;
        self
    }

    /// Replaces the per-solve sweep budget (builder style).
    pub fn with_budget(mut self, budget: SolveBudget) -> EquilibriumServer {
        self.budget = budget;
        self
    }

    /// Replaces the per-solve sweep budget in place. Healing a starved
    /// budget does **not** lift an existing quarantine — only
    /// [`EquilibriumServer::submit`] does.
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The per-solve sweep budget in force.
    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// Whether the market is quarantined (reads refused until a submit).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Consecutive budget blowouts since the last full answer.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// The resident market as currently parameterized.
    pub fn game(&self) -> &SubsidyGame {
        &self.game
    }

    /// Request/answer counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Cache counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dispatches one request. A quarantined market refuses every request
    /// with [`ServeError::Quarantined`] until a submit heals it.
    pub fn serve(&mut self, req: Request) -> ServeResult<Reply> {
        if self.quarantined {
            return Err(ServeError::Quarantined { strikes: self.strikes });
        }
        match req {
            Request::Update { axis, value } => {
                self.update(axis, value)?;
                Ok(Reply::Updated { axis, value })
            }
            Request::Equilibrium => {
                let (snap, source) = self.equilibrium()?;
                Ok(Reply::Equilibrium { snap, source })
            }
            Request::Sensitivity { axis } => Ok(self.serve_sensitivity(axis)?),
        }
    }

    /// The sensitivity read with the full degradation ladder: a partial
    /// equilibrium degrades to the plain equilibrium reply (no derivative
    /// of a non-converged iterate), a degenerate equilibrium answers its
    /// active-set partition, and only a regular equilibrium is
    /// differentiated.
    fn serve_sensitivity(&mut self, axis: Axis) -> NumResult<Reply> {
        let (snap, source) = self.equilibrium()?;
        if source == Source::Partial {
            return Ok(Reply::Equilibrium { snap, source });
        }
        if let Some(active_set) = Sensitivity::degeneracy(&self.game, snap.subsidies())? {
            self.stats.sensitivities += 1;
            return Ok(Reply::Degenerate { active_set, snap, source });
        }
        let ds = Sensitivity::directional(&mut self.game, snap.subsidies(), axis)?;
        self.stats.sensitivities += 1;
        self.seed = Some(TangentSeed {
            axis,
            at: axis.value(&self.game),
            ds: ds.clone(),
            base_key: self.base.expect("equilibrium just answered"),
        });
        Ok(Reply::Sensitivity { ds, snap, source })
    }

    /// Applies a validated axis write to the resident market. No solve
    /// happens until the next read.
    pub fn update(&mut self, axis: Axis, value: f64) -> NumResult<()> {
        axis.apply(&mut self.game, value)?;
        self.stats.updates += 1;
        self.dirty = match self.dirty {
            Dirty::Clean => Dirty::One(axis),
            Dirty::One(a) if a == axis => Dirty::One(axis),
            _ => Dirty::Many,
        };
        Ok(())
    }

    /// Replaces the resident market wholesale (a full-game submission).
    /// Workspace shapes adapt on the next solve; the cache is kept — a
    /// submission that fingerprints to a cached market stays O(lookup).
    ///
    /// A submit also **heals**: it clears the strike counter and lifts any
    /// quarantine before solving, so a fresh (fixed) game always gets a
    /// chance to answer.
    pub fn submit(&mut self, game: SubsidyGame) -> NumResult<(Arc<EqSnapshot>, Source)> {
        self.game = game;
        self.seed = None;
        self.base = None;
        self.dirty = Dirty::Many;
        self.strikes = 0;
        self.quarantined = false;
        self.equilibrium()
    }

    /// Answers the equilibrium of the market as currently parameterized.
    pub fn equilibrium(&mut self) -> NumResult<(Arc<EqSnapshot>, Source)> {
        let key = fingerprint(&self.game)?;
        self.stats.equilibria += 1;
        if let Some(snap) = self.cache.get(key) {
            self.stats.cache_hits += 1;
            self.strikes = 0;
            self.base = Some(key);
            self.dirty = Dirty::Clean;
            return Ok((snap, Source::CacheHit));
        }
        let slot = self.game.n() % self.pool.len();
        // Pick the best admissible warm start, cheapest-to-verify last:
        // a stored tangent along the single dirty axis, else the slot's
        // previous iterate (only if its shape matches), else cold.
        let tangent_dtheta = self.seed.as_ref().and_then(|seed| {
            let applicable = self.base == Some(seed.base_key)
                && self.dirty == Dirty::One(seed.axis)
                && self.slot_state[slot] == Some(seed.base_key);
            if !applicable {
                return None;
            }
            let dtheta = seed.axis.value(&self.game) - seed.at;
            self.tangent.admits(&seed.ds, dtheta).then_some(dtheta)
        });
        let ws = &mut self.pool[slot];
        let (start, source) = match tangent_dtheta {
            Some(dtheta) => {
                let seed = self.seed.as_ref().expect("checked above");
                (WarmStart::Tangent { ds_dtheta: &seed.ds, dtheta }, Source::Tangent)
            }
            None if self.slot_state[slot].is_some() && ws.subsidies().len() == self.game.n() => {
                (WarmStart::Previous, Source::Warm)
            }
            None => (WarmStart::Zero, Source::Cold),
        };
        let stats = self.solver.solve_into_budgeted(&self.game, start, ws, self.budget)?;
        if !stats.converged {
            // Only a finite budget can land here (the unlimited budget
            // defers to the MaxIterations error inside the solver):
            // degrade to a partial answer at the best iterate. Partial
            // answers are never cached and never trusted as warm state —
            // the next read re-solves from scratch, so repeated
            // starvation produces *identical* partial replies and a
            // deterministic strike count.
            self.stats.partial_solves += 1;
            self.strikes += 1;
            if self.strikes >= self.quarantine_after {
                self.quarantined = true;
            }
            self.slot_state[slot] = None;
            self.base = None;
            let mut arc = self.cache.blank();
            Arc::get_mut(&mut arc)
                .expect("blank snapshots are unique")
                .capture_into(&self.game, ws, stats);
            return Ok((arc, Source::Partial));
        }
        match source {
            Source::Tangent => self.stats.tangent_solves += 1,
            Source::Warm => self.stats.warm_solves += 1,
            _ => self.stats.cold_solves += 1,
        }
        self.strikes = 0;
        let mut arc = self.cache.blank();
        Arc::get_mut(&mut arc)
            .expect("blank snapshots are unique")
            .capture_into(&self.game, ws, stats);
        let reply = Arc::clone(&arc);
        self.cache.insert(key, arc);
        self.slot_state[slot] = Some(key);
        self.base = Some(key);
        self.dirty = Dirty::Clean;
        Ok((reply, source))
    }

    /// Answers the equilibrium plus `∂s*/∂axis`, and stores the derivative
    /// as a tangent seed for subsequent small writes along `axis`.
    pub fn sensitivity(&mut self, axis: Axis) -> NumResult<(Vec<f64>, Arc<EqSnapshot>, Source)> {
        let (snap, source) = self.equilibrium()?;
        let ds = Sensitivity::directional(&mut self.game, snap.subsidies(), axis)?;
        self.stats.sensitivities += 1;
        self.seed = Some(TangentSeed {
            axis,
            at: axis.value(&self.game),
            ds: ds.clone(),
            base_key: self.base.expect("equilibrium just answered"),
        });
        Ok((ds, snap, source))
    }

    /// Forgets all warm state (slot iterates, tangent seed, dirty
    /// tracking) without touching the cache — benches use this to force
    /// cold solves.
    pub fn cool(&mut self) {
        self.slot_state.iter_mut().for_each(|s| *s = None);
        self.seed = None;
        self.base = None;
        self.dirty = Dirty::Many;
    }

    /// Drops every cached equilibrium (retiring snapshots for recycling).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// The cached snapshot for the market **as currently parameterized**,
    /// if resident — counterless, recency-free introspection (the sharded
    /// tier's identity tests compare it against lock-free reads). `None`
    /// when the current parameterization is uncached or unfingerprintable.
    pub fn peek_current(&self) -> Option<Arc<EqSnapshot>> {
        let key = fingerprint(&self.game).ok()?;
        self.cache.peek(key)
    }

    /// The fingerprint of the last answered (full) equilibrium, if the
    /// parameterization has not been written since — the key the sharded
    /// tier publishes snapshots under, so a respawned shard can preload
    /// the same (key, snapshot) pair via [`EquilibriumServer::preload`].
    pub fn current_key(&self) -> Option<u64> {
        self.base
    }

    /// Seeds the fingerprint cache with an externally held answer (the
    /// supervision layer's rehydration path: the last *published* snapshot
    /// of a market whose shard died). The snapshot is inserted as-is; a
    /// subsequent read whose parameterization fingerprints to `key` is a
    /// bit-identical cache hit instead of a fresh solve.
    pub fn preload(&mut self, key: u64, snap: Arc<EqSnapshot>) {
        self.cache.insert(key, snap);
    }
}

/// p50/p99/mean over one latency window, in the unit of the samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean latency (its inverse is throughput).
    pub mean: f64,
    /// Number of samples summarized.
    pub count: usize,
}

/// Summarizes a latency window. A zero-request window (e.g. a warmup
/// phase that saw no traffic) is an explicit [`NumError::Empty`], not a
/// panic — callers print "n/a" and move on.
pub fn summarize_latencies(samples: &[f64]) -> NumResult<LatencySummary> {
    Ok(LatencySummary {
        p50: subcomp_num::stats::quantile(samples, 0.50)?,
        p99: subcomp_num::stats::quantile(samples, 0.99)?,
        mean: subcomp_num::stats::mean(samples)?,
        count: samples.len(),
    })
}
