//! Deterministic fault injection for the sharded equilibrium service.
//!
//! A [`FaultPlan`] is a pure function of `(seed, stream length, market
//! count)` — generated from dedicated sub-streams of the sim crate's
//! [`SimRng`] stream-split discipline, entirely independent of the load
//! generator's streams, so turning chaos on cannot perturb *which*
//! requests the workload issues. Four fault families cover the recovery
//! surface:
//!
//! * [`FaultKind::Panic`] — the request at the event's stream index
//!   panics inside the shard's per-request guard (market-scoped
//!   recovery: that one resident server is rebuilt).
//! * [`FaultKind::Kill`] — the serving shard thread dies outright
//!   (channel-failure recovery: restart plus fleet-wide rehydration).
//! * [`FaultKind::NanCurve`] — a market's demand curve is swapped for a
//!   wrapper that answers `NaN` above an effective price the solver
//!   never reaches but the fingerprint probes do, so the poison is
//!   caught at the door as a typed [`NumError::NonFinite`], never
//!   inside a solve.
//! * [`FaultKind::Starve`] — a market's [`SolveBudget`] is cut to one
//!   sweep, degrading its solves to [`Source::Partial`] answers until
//!   repeated blowouts quarantine it.
//!
//! Curve and budget faults schedule a paired [`FaultKind::Heal`] (clean
//! resubmit plus unlimited budget) a bounded distance later, and
//! [`run_chaos`] ends with an unconditional heal sweep over every
//! market — the acceptance bar is *zero unrecovered markets*, whatever
//! the plan did.
//!
//! **Replay contract.** The harness folds every reply and every typed
//! error into one bit-level checksum ([`fold_reply`]/[`fold_error`]).
//! Errors fold a stable *kind token* — never a shard index, which is the
//! one recovery coordinate that legitimately depends on `--shards` — so
//! the checksum is bit-identical run-to-run **and across shard counts**:
//! per-request faults are market-scoped, and whole-shard kills trigger
//! the router's canonical fleet-wide reset (see the `sharded` module
//! docs). `tests/fault_tier.rs` pins both identities.
//!
//! [`SimRng`]: subcomp_sim::rng::SimRng
//! [`Source::Partial`]: super::Source::Partial

use std::collections::BTreeMap;

use subcomp_core::game::SubsidyGame;
use subcomp_core::workspace::SolveBudget;
use subcomp_model::cp::ContentProvider;
use subcomp_model::demand::DemandFn;
use subcomp_num::error::{NumError, NumResult};
use subcomp_sim::rng::SimRng;

use super::loadgen::{generate_multi, LoadGenConfig};
use super::sharded::{Sabotage, ShardedConfig, ShardedServer};
use super::{Reply, Request, ServeError, ServeResult};

/// Sub-stream indices of the chaos seed. Deliberately far above the load
/// generator's range (which grows with the market count) so the two
/// schedules can never alias even under one shared master seed.
const STREAM_KIND: u64 = 9001;
const STREAM_AT: u64 = 9002;
const STREAM_MARKET: u64 = 9003;
const STREAM_HEAL: u64 = 9004;

/// Effective-price threshold of the NaN wrapper. The Gauss–Seidel sweep
/// only evaluates demand at `t = p − s ≤ p ≤ 0.9`, while the server's
/// fingerprint probes population at `t = 1.5` — so a curve poisoned
/// above 1.0 is caught by admission fingerprinting, never mid-solve.
const NAN_THRESHOLD: f64 = 1.0;

/// The starvation budget: one Gauss–Seidel sweep, far below what any
/// cold solve needs, so every cache miss degrades to a partial answer.
pub const STARVE_SWEEPS: usize = 1;

/// One injected fault kind. `Panic`/`Kill` ride on the request at the
/// event's stream index (whatever market it targets); curve/budget
/// faults name their market explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic while serving the request at this index (per-request guard).
    Panic,
    /// Kill the serving shard thread at this index.
    Kill,
    /// Swap `market`'s demand curve for the NaN-above-threshold wrapper.
    NanCurve {
        /// The poisoned market.
        market: u64,
    },
    /// Cut `market`'s solve budget to [`STARVE_SWEEPS`].
    Starve {
        /// The starved market.
        market: u64,
    },
    /// Heal `market`: restore an unlimited budget and resubmit the clean
    /// game (the quarantine-lifting path).
    Heal {
        /// The healed market.
        market: u64,
    },
}

/// One scheduled fault: fire when the request stream reaches index `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Stream index the event fires at (before serving that request).
    pub at: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule over a request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the schedule for a stream of `requests` total requests
    /// over `markets` markets. Pure: equal arguments give equal plans,
    /// and the argument list contains nothing shard-shaped — the same
    /// plan drives every shard count.
    ///
    /// Roughly one primary fault per 250 requests (at least four), each
    /// drawn uniformly over the four families; curve and budget faults
    /// add a paired heal 25–124 requests later.
    pub fn generate(seed: u64, requests: usize, markets: usize) -> FaultPlan {
        let mut kind_rng = SimRng::stream(seed, STREAM_KIND);
        let mut at_rng = SimRng::stream(seed, STREAM_AT);
        let mut market_rng = SimRng::stream(seed, STREAM_MARKET);
        let mut heal_rng = SimRng::stream(seed, STREAM_HEAL);
        let primaries = (requests / 250).max(4);
        let mut events = Vec::with_capacity(primaries * 2);
        for _ in 0..primaries {
            let at = at_rng.below(requests.max(1) as u64) as usize;
            match kind_rng.below(4) {
                0 => events.push(FaultEvent { at, kind: FaultKind::Panic }),
                1 => events.push(FaultEvent { at, kind: FaultKind::Kill }),
                kind => {
                    let market = market_rng.below(markets.max(1) as u64);
                    let fault = if kind == 2 {
                        FaultKind::NanCurve { market }
                    } else {
                        FaultKind::Starve { market }
                    };
                    events.push(FaultEvent { at, kind: fault });
                    let heal_at = at + 25 + heal_rng.below(100) as usize;
                    events.push(FaultEvent { at: heal_at, kind: FaultKind::Heal { market } });
                }
            }
        }
        // Stable sort: simultaneous events keep generation order, so the
        // application order is part of the plan's determinism contract.
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// A demand curve that answers `NaN` above a price threshold and defers
/// to the wrapped curve below it — the curve-corruption fault.
struct NanAbove {
    inner: Box<dyn DemandFn>,
    threshold: f64,
}

impl DemandFn for NanAbove {
    fn m(&self, t: f64) -> f64 {
        if t > self.threshold {
            f64::NAN
        } else {
            self.inner.m(t)
        }
    }
    fn dm_dt(&self, t: f64) -> f64 {
        if t > self.threshold {
            f64::NAN
        } else {
            self.inner.dm_dt(t)
        }
    }
    fn name(&self) -> &'static str {
        "nan-above"
    }
    fn boxed_clone(&self) -> Box<dyn DemandFn> {
        Box::new(NanAbove { inner: self.inner.boxed_clone(), threshold: self.threshold })
    }
    fn scaled(&self, kappa: f64) -> Box<dyn DemandFn> {
        Box::new(NanAbove { inner: self.inner.scaled(kappa), threshold: self.threshold })
    }
}

/// Returns a copy of `game` with provider 0's demand curve wrapped in
/// [`NanAbove`] — enough to poison the whole market's fingerprint (the
/// probes cover every provider) while leaving the solver's working range
/// untouched.
pub fn poison_game(game: &SubsidyGame) -> NumResult<SubsidyGame> {
    let mut system = game.system().clone();
    let cp = system.cp(0);
    let poisoned = ContentProvider::builder(cp.name().to_string())
        .demand_boxed(Box::new(NanAbove {
            inner: cp.demand().boxed_clone(),
            threshold: NAN_THRESHOLD,
        }))
        .throughput_boxed(cp.throughput().boxed_clone())
        .profitability(cp.profitability())
        .build();
    system.patch_cps([(0, poisoned)])?;
    SubsidyGame::new(system, game.price(), game.cap())
}

const SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const ERR_SALT: u64 = 0xA24B_AED4_963E_E407;

/// Folds one served reply into the running bit-level checksum: XOR of
/// the bits of every float the client would see, salted with the market
/// the reply belongs to. Order-sensitive enough to catch any drift in
/// the served sequence, cheap enough to be free.
pub fn fold_reply(acc: u64, market: u64, reply: &Reply) -> u64 {
    let mut acc = acc.rotate_left(1) ^ market.wrapping_mul(SALT);
    match reply {
        Reply::Updated { value, .. } => acc ^= value.to_bits(),
        Reply::Equilibrium { snap, .. } => {
            for s in snap.subsidies() {
                acc ^= s.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Sensitivity { ds, snap, .. } => {
            for d in ds {
                acc ^= d.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
        Reply::Degenerate { active_set, snap, .. } => {
            // The active-set partition is the answer here: fold which
            // providers sit on which bound (1-based so index 0 is
            // visible to the XOR).
            for &i in &active_set.lower {
                acc ^= (i as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95);
            }
            for &i in &active_set.upper {
                acc ^= (i as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
            }
            for s in snap.subsidies() {
                acc ^= s.to_bits();
            }
            acc ^= snap.state().phi.to_bits();
        }
    }
    acc
}

/// The stable failure-kind label of a typed serve error — the token
/// [`fold_error`] folds and the key the failure summaries group by.
/// Deliberately coarse: no shard indices, no float payloads, nothing
/// that could vary across shard counts while the fault sequence doesn't.
pub fn error_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::ShardRestarted { .. } => "shard-restarted",
        ServeError::Quarantined { .. } => "quarantined",
        ServeError::Num(NumError::NonFinite { .. }) => "non-finite",
        ServeError::Num(NumError::Domain { .. }) => "domain",
        ServeError::Num(NumError::MaxIterations { .. }) => "max-iterations",
        ServeError::Num(_) => "numeric",
    }
}

fn kind_token(kind: &'static str) -> u64 {
    match kind {
        "shard-restarted" => 0xF1,
        "quarantined" => 0xF2,
        "non-finite" => 0xF3,
        "domain" => 0xF4,
        "max-iterations" => 0xF5,
        _ => 0xFF,
    }
}

/// Folds one typed failure into the running checksum by market and
/// stable kind token — so the reply stream *including its failures* is
/// pinned bit-for-bit, without ever folding a shard coordinate.
pub fn fold_error(acc: u64, market: u64, err: &ServeError) -> u64 {
    acc.rotate_left(1)
        ^ market.wrapping_mul(SALT)
        ^ kind_token(error_kind(err)).wrapping_mul(ERR_SALT)
}

/// What one chaos run did and how the service fared — every field except
/// nothing is deterministic: equal configs give equal reports, including
/// across shard counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Workload requests served (excludes fault-control traffic).
    pub requests: usize,
    /// Workload requests answered with a reply.
    pub ok: usize,
    /// Workload requests answered with a typed error.
    pub failed: usize,
    /// Scheduled fault events (including paired heals).
    pub injected: usize,
    /// Whole-shard restarts the router performed.
    pub shard_restarts: u64,
    /// Resident market servers rebuilt from mirrors.
    pub market_rebuilds: u64,
    /// Bit-level checksum over every reply and every typed error, in
    /// stream order, including fault-control and final-heal traffic.
    pub checksum: u64,
    /// Typed failures grouped by stable kind label, sorted by label.
    pub failures_by_kind: Vec<(&'static str, usize)>,
    /// Typed failures grouped by market, sorted by market id.
    pub failures_by_market: Vec<(u64, usize)>,
    /// Markets still failing a full read after the final heal sweep.
    /// The recovery contract is that this is empty for every plan.
    pub unrecovered: Vec<u64>,
}

/// Configuration of one chaos run: the sharded-server shape, the
/// workload, and the fault seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Worker shards.
    pub shards: usize,
    /// Warm workspaces per resident market.
    pub pool: usize,
    /// Fingerprint-cache capacity per resident market.
    pub cache: usize,
    /// The workload (requests are per market).
    pub load: LoadGenConfig,
    /// Master seed of the fault schedule.
    pub chaos_seed: u64,
}

/// The running tallies one chaos episode accumulates: the checksum plus
/// the failure breakdowns the report is assembled from.
#[derive(Default)]
struct Tally {
    checksum: u64,
    by_kind: BTreeMap<&'static str, usize>,
    by_market: BTreeMap<u64, usize>,
}

impl Tally {
    /// Folds one serve outcome — reply bits or error kind token — and
    /// tallies typed failures by kind and market.
    fn fold(&mut self, market: u64, result: &ServeResult<Reply>) {
        match result {
            Ok(reply) => self.checksum = fold_reply(self.checksum, market, reply),
            Err(err) => {
                self.checksum = fold_error(self.checksum, market, err);
                *self.by_kind.entry(error_kind(err)).or_insert(0) += 1;
                *self.by_market.entry(market).or_insert(0) += 1;
            }
        }
    }
}

/// Applies one control-plane fault (curve poison, starvation, heal) to
/// the live server, folding whatever the control traffic answered.
fn apply_control(
    server: &mut ShardedServer,
    tally: &mut Tally,
    clean: &BTreeMap<u64, SubsidyGame>,
    kind: FaultKind,
) -> NumResult<()> {
    match kind {
        FaultKind::Panic | FaultKind::Kill => unreachable!("sabotage rides on requests"),
        FaultKind::NanCurve { market } => {
            let poisoned = poison_game(&clean[&market])?;
            let result = server.submit(market, poisoned);
            tally.fold(market, &result);
        }
        FaultKind::Starve { market } => {
            if let Err(err) = server.set_budget(market, SolveBudget::sweeps(STARVE_SWEEPS)) {
                tally.checksum = fold_error(tally.checksum, market, &err);
            }
        }
        FaultKind::Heal { market } => {
            if let Err(err) = server.set_budget(market, SolveBudget::unlimited()) {
                tally.checksum = fold_error(tally.checksum, market, &err);
            }
            let result = server.submit(market, clean[&market].clone());
            tally.fold(market, &result);
        }
    }
    Ok(())
}

/// Runs one deterministic chaos episode: stand up a [`ShardedServer`]
/// over `markets`, drive it with the stream-split workload while firing
/// the fault plan, then heal every market and verify it serves a full
/// answer. Equal `(markets, cfg)` give bit-identical reports — for any
/// `cfg.shards`.
pub fn run_chaos(markets: &[(u64, SubsidyGame)], cfg: &ChaosConfig) -> NumResult<ChaosReport> {
    let stream = generate_multi(&cfg.load, markets.len())?;
    let plan = FaultPlan::generate(cfg.chaos_seed, stream.len(), markets.len());
    let mut server = ShardedServer::new(
        markets.to_vec(),
        &ShardedConfig { shards: cfg.shards, pool: cfg.pool, cache: cfg.cache },
    )?;
    let clean: BTreeMap<u64, SubsidyGame> =
        markets.iter().map(|(id, g)| (*id, g.clone())).collect();

    let mut tally = Tally::default();
    let mut ok = 0usize;
    let mut failed = 0usize;

    let events = plan.events();
    let mut next_event = 0usize;
    for (i, (market, req)) in stream.iter().enumerate() {
        let mut sabotage = Sabotage::None;
        while next_event < events.len() && events[next_event].at <= i {
            match events[next_event].kind {
                FaultKind::Panic => sabotage = Sabotage::Panic,
                FaultKind::Kill => sabotage = Sabotage::Kill,
                kind => apply_control(&mut server, &mut tally, &clean, kind)?,
            }
            next_event += 1;
        }
        let result = server.serve_sabotaged(*market, *req, sabotage);
        match &result {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
        tally.fold(*market, &result);
    }
    // Control events scheduled past the stream's end still fire (their
    // paired faults did); sabotage leftovers have no request to ride and
    // are dropped.
    while next_event < events.len() {
        match events[next_event].kind {
            FaultKind::Panic | FaultKind::Kill => {}
            kind => apply_control(&mut server, &mut tally, &clean, kind)?,
        }
        next_event += 1;
    }

    // The unconditional heal sweep: whatever the plan left behind, every
    // market must come back to serving full answers.
    let mut unrecovered = Vec::new();
    for (&id, game) in &clean {
        if let Err(err) = server.set_budget(id, SolveBudget::unlimited()) {
            tally.checksum = fold_error(tally.checksum, id, &err);
        }
        let submitted = server.submit(id, game.clone());
        tally.fold(id, &submitted);
        let read = server.serve(id, Request::Equilibrium);
        let recovered = matches!(&read, Ok(Reply::Equilibrium { .. }));
        tally.fold(id, &read);
        if !recovered {
            unrecovered.push(id);
        }
    }

    Ok(ChaosReport {
        requests: stream.len(),
        ok,
        failed,
        injected: events.len(),
        shard_restarts: server.shard_restarts(),
        market_rebuilds: server.market_rebuilds(),
        checksum: tally.checksum,
        failures_by_kind: tally.by_kind.into_iter().collect(),
        failures_by_market: tally.by_market.into_iter().collect(),
        unrecovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;

    fn market() -> SubsidyGame {
        SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")
    }

    #[test]
    fn plans_replay_bit_identically() {
        let a = FaultPlan::generate(42, 2000, 8);
        let b = FaultPlan::generate(42, 2000, 8);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::generate(43, 2000, 8), "seed must matter");
        // Sorted by firing index, all four primary families present at
        // this size, every curve/budget fault paired with a heal.
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let heals = a.events().iter().filter(|e| matches!(e.kind, FaultKind::Heal { .. })).count();
        let paired = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NanCurve { .. } | FaultKind::Starve { .. }))
            .count();
        assert_eq!(heals, paired, "every curve/budget fault schedules its heal");
    }

    #[test]
    fn poisoned_game_fails_fingerprinting_not_solving() {
        let clean = market();
        let poisoned = poison_game(&clean).unwrap();
        // The solver's working range is untouched...
        let t = 0.5;
        assert_eq!(poisoned.system().cp(0).population(t), clean.system().cp(0).population(t));
        // ...but the fingerprint probe range is NaN.
        assert!(poisoned.system().cp(0).population(1.5).is_nan());
    }

    #[test]
    fn error_kinds_are_stable_and_shard_free() {
        let restarted = ServeError::ShardRestarted { shard: 3 };
        assert_eq!(error_kind(&restarted), "shard-restarted");
        // Folding must not depend on which shard restarted.
        let a = fold_error(7, 1, &ServeError::ShardRestarted { shard: 0 });
        let b = fold_error(7, 1, &ServeError::ShardRestarted { shard: 3 });
        assert_eq!(a, b, "shard coordinates must never reach the checksum");
        assert_eq!(error_kind(&ServeError::Quarantined { strikes: 3 }), "quarantined");
        assert_eq!(
            error_kind(&ServeError::Num(NumError::NonFinite { what: "x", at: 0.0 })),
            "non-finite"
        );
    }
}
