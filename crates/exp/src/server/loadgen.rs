//! Deterministic load generation for the equilibrium server.
//!
//! The generator emits a mixed read/update request stream over a small
//! table of "hot keys" — (price, cap, µ) operating points the stream
//! keeps returning to with a configurable Zipf-like skew, the standard
//! shape of cache-workload studies. Switching to a key emits the three
//! axis writes that land the resident market *exactly* on that key's
//! parameters, so revisits fingerprint onto earlier solves and the cache
//! hit rate is governed by `hot_keys`, `skew` and the cache capacity —
//! not by float jitter.
//!
//! Determinism follows the sim crate's stream-split discipline
//! ([`SimRng::stream`]): the key table, the key-choice sequence and the
//! operation-choice sequence each draw from an independent sub-stream of
//! one master seed, so changing (say) the read fraction cannot perturb
//! *which* keys the stream visits. Same config, same requests — the
//! replay property the server tier tests pin.

use super::Request;
use subcomp_core::game::Axis;
use subcomp_sim::rng::SimRng;

/// Configuration of one generated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Total requests to emit.
    pub requests: usize,
    /// Master seed; all sub-streams derive from it.
    pub seed: u64,
    /// Fraction of steps that read (vs. switch operating point).
    pub read_fraction: f64,
    /// Fraction of reads that also ask for a sensitivity.
    pub sensitivity_fraction: f64,
    /// Number of hot operating points.
    pub hot_keys: usize,
    /// Zipf-like skew exponent over the hot keys (0 = uniform).
    pub skew: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            requests: 1000,
            seed: 7,
            read_fraction: 0.8,
            sensitivity_fraction: 0.1,
            hot_keys: 8,
            skew: 1.0,
        }
    }
}

/// One hot operating point of the resident market.
#[derive(Debug, Clone, Copy, PartialEq)]
struct KeyPoint {
    price: f64,
    cap: f64,
    mu: f64,
}

impl KeyPoint {
    /// The three axis writes that land the market exactly on this point.
    fn writes(self) -> [Request; 3] {
        [
            Request::Update { axis: Axis::Price, value: self.price },
            Request::Update { axis: Axis::Cap, value: self.cap },
            Request::Update { axis: Axis::Mu, value: self.mu },
        ]
    }
}

/// Draws the hot-key table from its own sub-stream. Ranges stay inside
/// every scenario's validated parameter domain.
fn key_table(cfg: &LoadGenConfig) -> Vec<KeyPoint> {
    let mut rng = SimRng::stream(cfg.seed, 0);
    (0..cfg.hot_keys.max(1))
        .map(|_| KeyPoint {
            price: rng.uniform_in(0.3, 0.9),
            cap: rng.uniform_in(0.5, 1.2),
            mu: rng.uniform_in(0.8, 2.0),
        })
        .collect()
}

/// Zipf-like choice over `n` keys: key `i` has weight `1/(i+1)^skew`.
fn pick_key(rng: &mut SimRng, n: usize, skew: f64) -> usize {
    let total: f64 = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).sum();
    let mut u = rng.uniform() * total;
    for i in 0..n {
        u -= 1.0 / ((i + 1) as f64).powf(skew);
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generates the request stream for `cfg`. Deterministic: equal configs
/// produce equal streams.
pub fn generate(cfg: &LoadGenConfig) -> Vec<Request> {
    let keys = key_table(cfg);
    let mut key_rng = SimRng::stream(cfg.seed, 1);
    let mut op_rng = SimRng::stream(cfg.seed, 2);
    let mut out = Vec::with_capacity(cfg.requests + 3);
    // Start on a definite operating point so the first read is solvable
    // state, not whatever the server was constructed with.
    let mut current = pick_key(&mut key_rng, keys.len(), cfg.skew);
    out.extend(keys[current].writes());
    while out.len() < cfg.requests {
        if op_rng.bernoulli(cfg.read_fraction) {
            if op_rng.bernoulli(cfg.sensitivity_fraction) {
                let axis = match op_rng.uniform_in(0.0, 3.0) as usize {
                    0 => Axis::Price,
                    1 => Axis::Cap,
                    _ => Axis::Mu,
                };
                out.push(Request::Sensitivity { axis });
            } else {
                out.push(Request::Equilibrium);
            }
        } else {
            let next = pick_key(&mut key_rng, keys.len(), cfg.skew);
            if next == current {
                // Re-landing on the current point would be three no-op
                // writes; read instead so the mix stays request-dense.
                out.push(Request::Equilibrium);
            } else {
                current = next;
                out.extend(keys[current].writes());
            }
        }
    }
    out.truncate(cfg.requests);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_bit_identical() {
        let cfg = LoadGenConfig { requests: 500, ..Default::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = LoadGenConfig { seed: 8, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn respects_request_count_and_mix() {
        let cfg = LoadGenConfig { requests: 2000, ..Default::default() };
        let reqs = generate(&cfg);
        assert_eq!(reqs.len(), 2000);
        let reads = reqs
            .iter()
            .filter(|r| matches!(r, Request::Equilibrium | Request::Sensitivity { .. }))
            .count();
        let frac = reads as f64 / reqs.len() as f64;
        // Updates come in bursts of three, so the read share sits well
        // above a naive 0.8 — just pin that both classes are present in
        // sensible proportion.
        assert!(frac > 0.5 && frac < 0.99, "read fraction {frac}");
        assert!(reqs.iter().any(|r| matches!(r, Request::Sensitivity { .. })));
        assert!(reqs.iter().any(|r| matches!(r, Request::Update { .. })));
    }

    #[test]
    fn skew_concentrates_traffic_on_head_keys() {
        let mut rng = SimRng::stream(3, 9);
        let n = 8;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            counts[pick_key(&mut rng, n, 1.2)] += 1;
        }
        assert!(counts[0] > counts[n - 1] * 3, "head {} tail {}", counts[0], counts[n - 1]);
        // Uniform skew spreads evenly-ish.
        let mut uni = vec![0usize; n];
        let mut rng = SimRng::stream(3, 10);
        for _ in 0..20_000 {
            uni[pick_key(&mut rng, n, 0.0)] += 1;
        }
        let (lo, hi) = (uni.iter().min().unwrap(), uni.iter().max().unwrap());
        assert!(*hi < lo * 2, "uniform spread lo {lo} hi {hi}");
    }

    #[test]
    fn updates_land_exactly_on_table_points() {
        let cfg = LoadGenConfig { requests: 400, read_fraction: 0.2, ..Default::default() };
        let keys = key_table(&cfg);
        let reqs = generate(&cfg);
        for req in &reqs {
            if let Request::Update { axis, value } = req {
                let on_table = keys.iter().any(|k| match axis {
                    Axis::Price => k.price == *value,
                    Axis::Cap => k.cap == *value,
                    Axis::Mu => k.mu == *value,
                    Axis::Profitability(_) => false,
                });
                assert!(on_table, "update {axis:?}={value} off the hot-key table");
            }
        }
    }
}
