//! Deterministic load generation for the equilibrium server.
//!
//! The generator emits a mixed read/update request stream over a small
//! table of "hot keys" — (price, cap, µ) operating points the stream
//! keeps returning to with a configurable Zipf-like skew, the standard
//! shape of cache-workload studies. Switching to a key emits the three
//! axis writes that land the resident market *exactly* on that key's
//! parameters, so revisits fingerprint onto earlier solves and the cache
//! hit rate is governed by `hot_keys`, `skew` and the cache capacity —
//! not by float jitter.
//!
//! The operation mix is a three-way categorical split per step:
//! sensitivity read with probability `sensitivity_fraction`, plain
//! equilibrium read with probability `read_fraction`, operating-point
//! switch with the remainder — so the two configured fractions must sum
//! to at most 1, which [`LoadGenConfig::validate`] enforces with a typed
//! error instead of silently skewing the mix. Discrete choices (the
//! sensitivity axis) use the exact integer draw [`SimRng::below`], never
//! a float-range cast.
//!
//! Determinism follows the sim crate's stream-split discipline
//! ([`SimRng::stream`]): the key table, the key-choice sequence and the
//! operation-choice sequence each draw from an independent sub-stream of
//! one master seed, so changing (say) the read fraction cannot perturb
//! *which* keys the stream visits. Same config, same requests — the
//! replay property the server tier tests pin.
//!
//! [`generate_multi`] extends the discipline to several resident
//! markets: market `m` derives its own *master* seed from the
//! config seed via [`SimRng::stream_seed`] and generates exactly the
//! single-market stream for that seed, while a separate scheduler
//! sub-stream interleaves the per-market queues. Each market's
//! subsequence is therefore bit-identical to its standalone stream —
//! independent of how many markets ride along or how many shards serve
//! them, the replay contract of the sharded server tier.

use super::Request;
use subcomp_core::game::Axis;
use subcomp_num::error::{NumError, NumResult};
use subcomp_sim::rng::SimRng;

/// Sub-stream indices of the master seed. Markets beyond the first get
/// their own derived master seeds starting at `STREAM_MARKET_BASE`.
const STREAM_KEY_TABLE: u64 = 0;
const STREAM_KEY_CHOICE: u64 = 1;
const STREAM_OP_CHOICE: u64 = 2;
const STREAM_SCHEDULER: u64 = 3;
const STREAM_MARKET_BASE: u64 = 4;

/// Configuration of one generated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Total requests to emit (per market, for [`generate_multi`]).
    pub requests: usize,
    /// Master seed; all sub-streams derive from it.
    pub seed: u64,
    /// Probability that a step is a plain equilibrium read.
    pub read_fraction: f64,
    /// Probability that a step is a sensitivity read. Together with
    /// `read_fraction` this must not exceed 1; the remainder switches
    /// the operating point.
    pub sensitivity_fraction: f64,
    /// Number of hot operating points.
    pub hot_keys: usize,
    /// Zipf-like skew exponent over the hot keys (0 = uniform).
    pub skew: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            requests: 1000,
            seed: 7,
            read_fraction: 0.8,
            sensitivity_fraction: 0.1,
            hot_keys: 8,
            skew: 1.0,
        }
    }
}

impl LoadGenConfig {
    /// Checks the configuration is a well-defined workload: both
    /// fractions in `[0, 1]`, their sum at most 1 (they are disjoint
    /// shares of one categorical draw), and a finite non-negative skew.
    pub fn validate(&self) -> NumResult<()> {
        for (what, f) in [
            ("load generator: read fraction", self.read_fraction),
            ("load generator: sensitivity fraction", self.sensitivity_fraction),
        ] {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(NumError::Domain { what, value: f });
            }
        }
        let sum = self.read_fraction + self.sensitivity_fraction;
        if sum > 1.0 {
            return Err(NumError::Domain {
                what: "load generator: read + sensitivity fractions exceed 1",
                value: sum,
            });
        }
        if !self.skew.is_finite() || self.skew < 0.0 {
            return Err(NumError::Domain { what: "load generator: skew", value: self.skew });
        }
        Ok(())
    }
}

/// One hot operating point of the resident market.
#[derive(Debug, Clone, Copy, PartialEq)]
struct KeyPoint {
    price: f64,
    cap: f64,
    mu: f64,
}

impl KeyPoint {
    /// The three axis writes that land the market exactly on this point.
    fn writes(self) -> [Request; 3] {
        [
            Request::Update { axis: Axis::Price, value: self.price },
            Request::Update { axis: Axis::Cap, value: self.cap },
            Request::Update { axis: Axis::Mu, value: self.mu },
        ]
    }
}

/// Draws the hot-key table from its own sub-stream. Ranges stay inside
/// every scenario's validated parameter domain.
fn key_table(cfg: &LoadGenConfig) -> Vec<KeyPoint> {
    let mut rng = SimRng::stream(cfg.seed, STREAM_KEY_TABLE);
    (0..cfg.hot_keys.max(1))
        .map(|_| KeyPoint {
            price: rng.uniform_in(0.3, 0.9),
            cap: rng.uniform_in(0.5, 1.2),
            mu: rng.uniform_in(0.8, 2.0),
        })
        .collect()
}

/// Zipf-like choice over `n` keys: key `i` has weight `1/(i+1)^skew`.
fn pick_key(rng: &mut SimRng, n: usize, skew: f64) -> usize {
    let total: f64 = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).sum();
    let mut u = rng.uniform() * total;
    for i in 0..n {
        u -= 1.0 / ((i + 1) as f64).powf(skew);
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generates the request stream for `cfg`. Deterministic: equal configs
/// produce equal streams. A malformed config (fractions outside `[0, 1]`
/// or summing above it) is a typed error, never a silently skewed mix.
pub fn generate(cfg: &LoadGenConfig) -> NumResult<Vec<Request>> {
    cfg.validate()?;
    let keys = key_table(cfg);
    let mut key_rng = SimRng::stream(cfg.seed, STREAM_KEY_CHOICE);
    let mut op_rng = SimRng::stream(cfg.seed, STREAM_OP_CHOICE);
    let mut out = Vec::with_capacity(cfg.requests + 3);
    // Start on a definite operating point so the first read is solvable
    // state, not whatever the server was constructed with.
    let mut current = pick_key(&mut key_rng, keys.len(), cfg.skew);
    out.extend(keys[current].writes());
    while out.len() < cfg.requests {
        // One categorical draw per step: [0, sens) → sensitivity read,
        // [sens, sens + read) → plain read, the rest → key switch.
        let u = op_rng.uniform();
        if u < cfg.sensitivity_fraction {
            let axis = match op_rng.below(3) {
                0 => Axis::Price,
                1 => Axis::Cap,
                _ => Axis::Mu,
            };
            out.push(Request::Sensitivity { axis });
        } else if u < cfg.sensitivity_fraction + cfg.read_fraction {
            out.push(Request::Equilibrium);
        } else {
            let next = pick_key(&mut key_rng, keys.len(), cfg.skew);
            if next == current {
                // Re-landing on the current point would be three no-op
                // writes; read instead so the mix stays request-dense.
                out.push(Request::Equilibrium);
            } else {
                current = next;
                out.extend(keys[current].writes());
            }
        }
    }
    out.truncate(cfg.requests);
    Ok(out)
}

/// Generates interleaved traffic over `markets` resident markets:
/// `(market id, request)` pairs, `cfg.requests` requests per market.
///
/// Market `m` (ids `0..markets`) runs the single-market generator under
/// its own derived master seed, so its subsequence is bit-identical to
/// `generate` with that seed — regardless of `markets` or of how many
/// shards later serve the stream. A dedicated scheduler sub-stream picks
/// which market's queue advances next (uniformly over the markets that
/// still have requests), preserving per-market order by construction.
pub fn generate_multi(cfg: &LoadGenConfig, markets: usize) -> NumResult<Vec<(u64, Request)>> {
    cfg.validate()?;
    if markets == 0 {
        return Err(NumError::Empty { what: "load generator: markets" });
    }
    let mut queues: Vec<std::collections::VecDeque<Request>> = (0..markets)
        .map(|m| {
            let market_cfg = LoadGenConfig {
                seed: SimRng::stream_seed(cfg.seed, STREAM_MARKET_BASE + m as u64),
                ..*cfg
            };
            generate(&market_cfg).map(Into::into)
        })
        .collect::<NumResult<_>>()?;
    let mut sched = SimRng::stream(cfg.seed, STREAM_SCHEDULER);
    let mut alive: Vec<usize> = (0..markets).collect();
    let mut out = Vec::with_capacity(markets * cfg.requests);
    while !alive.is_empty() {
        let pick = sched.below(alive.len() as u64) as usize;
        let market = alive[pick];
        match queues[market].pop_front() {
            Some(req) => out.push((market as u64, req)),
            None => unreachable!("drained markets leave the alive list"),
        }
        if queues[market].is_empty() {
            alive.swap_remove(pick);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_bit_identical() {
        let cfg = LoadGenConfig { requests: 500, ..Default::default() };
        assert_eq!(generate(&cfg).unwrap(), generate(&cfg).unwrap());
        let other = LoadGenConfig { seed: 8, ..cfg };
        assert_ne!(generate(&cfg).unwrap(), generate(&other).unwrap());
    }

    #[test]
    fn respects_request_count_and_mix() {
        let cfg = LoadGenConfig { requests: 2000, ..Default::default() };
        let reqs = generate(&cfg).unwrap();
        assert_eq!(reqs.len(), 2000);
        let reads = reqs
            .iter()
            .filter(|r| matches!(r, Request::Equilibrium | Request::Sensitivity { .. }))
            .count();
        let frac = reads as f64 / reqs.len() as f64;
        // Updates come in bursts of three, so the read share sits well
        // above a naive 0.8 — just pin that both classes are present in
        // sensible proportion.
        assert!(frac > 0.5 && frac < 0.99, "read fraction {frac}");
        assert!(reqs.iter().any(|r| matches!(r, Request::Sensitivity { .. })));
        assert!(reqs.iter().any(|r| matches!(r, Request::Update { .. })));
    }

    #[test]
    fn op_mix_follows_the_configured_three_way_split() {
        // The distribution pin behind the integer-draw bugfix: per
        // *step*, sensitivity reads fire with probability `sens`, plain
        // reads with `read`, and the remainder switches keys. Steps are
        // reconstructed by folding each three-write switch burst into
        // one step (same-key re-lands surface as an extra plain read, so
        // the plain-read share is checked as a floor).
        let cfg = LoadGenConfig {
            requests: 30_000,
            read_fraction: 0.5,
            sensitivity_fraction: 0.3,
            hot_keys: 32,
            skew: 0.3,
            ..Default::default()
        };
        let reqs = generate(&cfg).unwrap();
        let mut sens = 0usize;
        let mut plain = 0usize;
        let mut switches = 0usize;
        let mut axis_counts = [0usize; 3];
        let mut i = 0;
        while i < reqs.len() {
            match reqs[i] {
                Request::Sensitivity { axis } => {
                    sens += 1;
                    axis_counts[match axis {
                        Axis::Price => 0,
                        Axis::Cap => 1,
                        _ => 2,
                    }] += 1;
                    i += 1;
                }
                Request::Equilibrium => {
                    plain += 1;
                    i += 1;
                }
                Request::Update { .. } => {
                    switches += 1;
                    i += 3; // a switch is a burst of three axis writes
                }
            }
        }
        let steps = (sens + plain + switches) as f64;
        let sens_share = sens as f64 / steps;
        let switch_share = switches as f64 / steps;
        assert!((sens_share - 0.3).abs() < 0.02, "sensitivity share {sens_share}");
        // Same-key re-lands convert switch steps into plain reads, so the
        // switch share is bounded above by 0.2 and the plain share below
        // by 0.5; with 32 near-uniform keys the conversion is small.
        assert!(switch_share > 0.15 && switch_share <= 0.21, "switch share {switch_share}");
        assert!(plain as f64 / steps >= 0.49, "plain-read share {}", plain as f64 / steps);
        // The axis choice is an exact three-arm integer draw: all arms
        // present in roughly equal shares — the `uniform_in(0.0, 3.0) as
        // usize` draw this replaces starved no arm but could alias 3.0.
        for (arm, &c) in axis_counts.iter().enumerate() {
            let share = c as f64 / sens as f64;
            assert!((share - 1.0 / 3.0).abs() < 0.03, "axis arm {arm} share {share}");
        }
    }

    #[test]
    fn malformed_configs_are_typed_errors() {
        let over =
            LoadGenConfig { read_fraction: 0.8, sensitivity_fraction: 0.3, ..Default::default() };
        assert!(matches!(generate(&over), Err(NumError::Domain { .. })));
        let negative = LoadGenConfig { read_fraction: -0.1, ..Default::default() };
        assert!(matches!(generate(&negative), Err(NumError::Domain { .. })));
        let nan = LoadGenConfig { sensitivity_fraction: f64::NAN, ..Default::default() };
        assert!(matches!(generate(&nan), Err(NumError::Domain { .. })));
        let bad_skew = LoadGenConfig { skew: -1.0, ..Default::default() };
        assert!(matches!(generate(&bad_skew), Err(NumError::Domain { .. })));
        // Exactly summing to 1 is a valid (switch-free) workload.
        let exact = LoadGenConfig {
            requests: 50,
            read_fraction: 0.9,
            sensitivity_fraction: 0.1,
            ..Default::default()
        };
        assert_eq!(generate(&exact).unwrap().len(), 50);
    }

    #[test]
    fn skew_concentrates_traffic_on_head_keys() {
        let mut rng = SimRng::stream(3, 9);
        let n = 8;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            counts[pick_key(&mut rng, n, 1.2)] += 1;
        }
        assert!(counts[0] > counts[n - 1] * 3, "head {} tail {}", counts[0], counts[n - 1]);
        // Uniform skew spreads evenly-ish.
        let mut uni = vec![0usize; n];
        let mut rng = SimRng::stream(3, 10);
        for _ in 0..20_000 {
            uni[pick_key(&mut rng, n, 0.0)] += 1;
        }
        let (lo, hi) = (uni.iter().min().unwrap(), uni.iter().max().unwrap());
        assert!(*hi < lo * 2, "uniform spread lo {lo} hi {hi}");
    }

    #[test]
    fn updates_land_exactly_on_table_points() {
        let cfg = LoadGenConfig { requests: 400, read_fraction: 0.2, ..Default::default() };
        let keys = key_table(&cfg);
        let reqs = generate(&cfg).unwrap();
        for req in &reqs {
            if let Request::Update { axis, value } = req {
                let on_table = keys.iter().any(|k| match axis {
                    Axis::Price => k.price == *value,
                    Axis::Cap => k.cap == *value,
                    Axis::Mu => k.mu == *value,
                    Axis::Profitability(_) => false,
                });
                assert!(on_table, "update {axis:?}={value} off the hot-key table");
            }
        }
    }

    #[test]
    fn multi_market_subsequences_match_standalone_streams() {
        // The sharded replay substrate: market m's subsequence of the
        // interleaved stream is bit-identical to the standalone stream
        // under its derived master seed — and does not depend on how
        // many markets ride along.
        let cfg = LoadGenConfig { requests: 300, ..Default::default() };
        let interleaved = generate_multi(&cfg, 3).unwrap();
        assert_eq!(interleaved.len(), 3 * 300);
        for m in 0..3u64 {
            let standalone = generate(&LoadGenConfig {
                seed: SimRng::stream_seed(cfg.seed, STREAM_MARKET_BASE + m),
                ..cfg
            })
            .unwrap();
            let sub: Vec<Request> =
                interleaved.iter().filter(|(id, _)| *id == m).map(|(_, r)| *r).collect();
            assert_eq!(sub, standalone, "market {m} drifted off its standalone stream");
        }
        // Growing the market count leaves market 0's subsequence alone.
        let wider = generate_multi(&cfg, 5).unwrap();
        let sub_of = |stream: &[(u64, Request)]| -> Vec<Request> {
            stream.iter().filter(|(id, _)| *id == 0).map(|(_, r)| *r).collect()
        };
        assert_eq!(sub_of(&interleaved), sub_of(&wider));
        // Replay of the interleaving itself is bit-identical too.
        assert_eq!(interleaved, generate_multi(&cfg, 3).unwrap());
        assert!(matches!(generate_multi(&cfg, 0), Err(NumError::Empty { .. })));
    }
}
