//! Sharded multi-market serving: session multiplexing over resident
//! markets with a lock-free read path.
//!
//! [`ShardedServer`] hosts many resident markets on `S` worker shards,
//! each shard a thread owning a full [`EquilibriumServer`] per market it
//! is pinned to — resident [`SubsidyGame`], warm workspace pool,
//! fingerprint cache, tangent ladder, all of it. The router in front
//! does two things:
//!
//! * **Pins each market/session id to a shard by stable hash** (FNV-1a
//!   over the id, mod `S`), and serves every request for a market
//!   synchronously through its shard's command channel — so per-market
//!   request order is preserved exactly, and a market's replies are
//!   bit-identical to a standalone `EquilibriumServer` fed the same
//!   subsequence, **whatever the shard count** (markets never share
//!   solver state, caches or workspaces; a shard is an execution host,
//!   nothing more).
//! * **Serves pure reads of already-published equilibria lock-free**:
//!   after a shard answers an equilibrium or sensitivity read, it
//!   publishes the answering snapshot into a shared
//!   [`SnapshotIndex`] (and retracts the market on any write) *before*
//!   replying. A later `Request::Equilibrium` for that market is then
//!   answered by the router as an `Arc` clone out of the index —
//!   [`Source::LockFree`], one atomic generation check plus a hash
//!   lookup, never touching the owning shard's solver state or its
//!   queue.
//!
//! The lock-free path is **deterministic** under the synchronous serve
//! discipline: publication happens before the shard's reply is sent, the
//! channel reply synchronizes-with the router's receive, and only the
//! market's own requests can change its published entry — so whether a
//! given request fires the fast path is a pure function of the request
//! stream, independent of shard count and thread timing. It is also
//! **answer-preserving**: the fast path fires only when the owning
//! market server's last answer for the current parameterization is still
//! current (any intervening write retracted the entry), and a skipped
//! cache-hit request would not have changed that server's solver state —
//! so the served bits match the standalone serve exactly. What *does*
//! diverge is bookkeeping: requests absorbed by the router never reach
//! the shard, so per-shard `ServerStats`/cache counters count only the
//! traffic the shard actually saw, and the router tallies
//! [`ShardedServer::lockfree_hits`] separately.
//!
//! [`SnapshotIndex`]: subcomp_core::snapshot::SnapshotIndex

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use subcomp_core::game::SubsidyGame;
use subcomp_core::snapshot::{EqSnapshot, SnapshotIndex, SnapshotReader};
use subcomp_num::error::{NumError, NumResult};

use super::{CacheStats, EquilibriumServer, Reply, Request, ServerStats, Source};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The stable market → shard pinning: FNV-1a over the market id's bytes,
/// reduced mod the shard count. Pure, so tests can predict placements.
pub fn shard_of_market(market: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = FNV_OFFSET;
    for byte in market.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// Construction parameters of a [`ShardedServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Worker shards (threads). At least 1.
    pub shards: usize,
    /// Warm workspaces per resident market.
    pub pool: usize,
    /// Fingerprint-cache capacity per resident market (0 = always-miss).
    pub cache: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig { shards: 1, pool: 2, cache: 64 }
    }
}

/// One shard's aggregate view for the deterministic report: how many
/// markets it hosts and the sums of their server/cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Resident markets pinned to this shard.
    pub markets: usize,
    /// Request/answer counters summed over the shard's markets.
    pub stats: ServerStats,
    /// Cache counters summed over the shard's markets (`len`/`capacity`
    /// are summed occupancy, not a single cache's).
    pub cache: CacheStats,
}

/// Commands the router sends a shard. Every command gets exactly one
/// reply on the shard's response channel.
enum ShardCmd {
    Serve { market: u64, req: Request },
    Peek { market: u64 },
    Report,
    Shutdown,
}

/// Shard → router replies, matched 1:1 with commands.
enum ShardReply {
    Served(NumResult<Reply>),
    Peeked(Option<Arc<EqSnapshot>>),
    Reported { markets: usize, stats: ServerStats, cache: CacheStats },
    Stopping,
}

struct ShardHandle {
    cmd: SyncSender<ShardCmd>,
    resp: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
}

fn closed(context: &'static str) -> NumError {
    NumError::Empty { what: context }
}

/// The sharded multi-market service. See the module docs for the design.
pub struct ShardedServer {
    shards: Vec<ShardHandle>,
    /// market id → shard index, fixed at construction.
    pinning: HashMap<u64, usize>,
    reader: SnapshotReader,
    lockfree_hits: u64,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.shards.len())
            .field("markets", &self.pinning.len())
            .field("lockfree_hits", &self.lockfree_hits)
            .finish()
    }
}

impl ShardedServer {
    /// Builds the service over `markets` (id, game) pairs with `cfg.shards`
    /// worker threads. Ids must be unique; each market becomes a full
    /// resident [`EquilibriumServer`] on its pinned shard.
    pub fn new(markets: Vec<(u64, SubsidyGame)>, cfg: &ShardedConfig) -> NumResult<ShardedServer> {
        if cfg.shards == 0 {
            return Err(NumError::Domain { what: "sharded server: shards", value: 0.0 });
        }
        if markets.is_empty() {
            return Err(NumError::Empty { what: "sharded server: markets" });
        }
        let mut pinning = HashMap::with_capacity(markets.len());
        let mut per_shard: Vec<Vec<(u64, EquilibriumServer)>> =
            (0..cfg.shards).map(|_| Vec::new()).collect();
        for (id, game) in markets {
            let shard = shard_of_market(id, cfg.shards);
            if pinning.insert(id, shard).is_some() {
                return Err(NumError::Domain {
                    what: "sharded server: duplicate market id",
                    value: id as f64,
                });
            }
            per_shard[shard].push((id, EquilibriumServer::new(game, cfg.pool, cfg.cache)));
        }

        let index = SnapshotIndex::new();
        let reader = index.reader();
        let shards =
            per_shard.into_iter().map(|servers| spawn_shard(servers, index.clone())).collect();
        Ok(ShardedServer { shards, pinning, reader, lockfree_hits: 0 })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident markets across all shards.
    pub fn markets(&self) -> usize {
        self.pinning.len()
    }

    /// The shard `market` is pinned to, if it is resident.
    pub fn shard_of(&self, market: u64) -> Option<usize> {
        self.pinning.get(&market).copied()
    }

    /// Equilibrium reads the router answered lock-free, bypassing shards.
    pub fn lockfree_hits(&self) -> u64 {
        self.lockfree_hits
    }

    /// Serves one request for `market`, trying the lock-free snapshot
    /// path first for pure equilibrium reads and falling back to the
    /// owning shard. Per-market order is preserved: the call returns
    /// only after the request is fully answered.
    pub fn serve(&mut self, market: u64, req: Request) -> NumResult<Reply> {
        if matches!(req, Request::Equilibrium) {
            if let Some(snap) = self.reader.get(market) {
                self.lockfree_hits += 1;
                return Ok(Reply::Equilibrium { snap, source: Source::LockFree });
            }
        }
        self.serve_direct(market, req)
    }

    /// Serves one request for `market` through its owning shard,
    /// bypassing the lock-free fast path (benches compare the two).
    pub fn serve_direct(&mut self, market: u64, req: Request) -> NumResult<Reply> {
        let shard = self.shard_checked(market)?;
        let handle = &self.shards[shard];
        handle
            .cmd
            .send(ShardCmd::Serve { market, req })
            .map_err(|_| closed("sharded server: shard command channel"))?;
        match handle.resp.recv() {
            Ok(ShardReply::Served(result)) => result,
            Ok(_) => Err(closed("sharded server: shard protocol desync")),
            Err(_) => Err(closed("sharded server: shard reply channel")),
        }
    }

    /// The pure lock-free read: the published snapshot for `market`, if
    /// any — one atomic generation check plus a hash lookup and an `Arc`
    /// clone, no shard round-trip, no lock in the steady state.
    pub fn read_cached(&mut self, market: u64) -> Option<Arc<EqSnapshot>> {
        self.reader.get(market)
    }

    /// The owning shard's resident cache entry for `market` as currently
    /// parameterized (counterless introspection via
    /// [`EquilibriumServer::peek_current`]) — identity tests compare it
    /// with [`ShardedServer::read_cached`] by `Arc::ptr_eq`.
    pub fn peek_shard_cache(&self, market: u64) -> NumResult<Option<Arc<EqSnapshot>>> {
        let shard = self.shard_checked(market)?;
        let handle = &self.shards[shard];
        handle
            .cmd
            .send(ShardCmd::Peek { market })
            .map_err(|_| closed("sharded server: shard command channel"))?;
        match handle.resp.recv() {
            Ok(ShardReply::Peeked(snap)) => Ok(snap),
            Ok(_) => Err(closed("sharded server: shard protocol desync")),
            Err(_) => Err(closed("sharded server: shard reply channel")),
        }
    }

    /// Per-shard aggregate counters, in shard order — the deterministic
    /// per-shard section of the `serve_market` report.
    pub fn shard_reports(&self) -> NumResult<Vec<ShardReport>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, handle)| {
                handle
                    .cmd
                    .send(ShardCmd::Report)
                    .map_err(|_| closed("sharded server: shard command channel"))?;
                match handle.resp.recv() {
                    Ok(ShardReply::Reported { markets, stats, cache }) => {
                        Ok(ShardReport { shard, markets, stats, cache })
                    }
                    Ok(_) => Err(closed("sharded server: shard protocol desync")),
                    Err(_) => Err(closed("sharded server: shard reply channel")),
                }
            })
            .collect()
    }

    fn shard_checked(&self, market: u64) -> NumResult<usize> {
        self.shard_of(market).ok_or(NumError::Domain {
            what: "sharded server: unknown market id",
            value: market as f64,
        })
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        for handle in &mut self.shards {
            // A dead shard thread has already dropped its receiver; both
            // sends and the join stay best-effort during teardown.
            if handle.cmd.send(ShardCmd::Shutdown).is_ok() {
                let _ = handle.resp.recv();
            }
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// Spawns one shard thread over its pinned market servers. Channels are
/// bounded rendezvous-style (`sync_channel(1)`): the router serves
/// synchronously, so depth 1 never blocks, and sends move only the
/// fixed-size command/reply values — no allocation per request on the
/// router side.
fn spawn_shard(servers: Vec<(u64, EquilibriumServer)>, index: SnapshotIndex) -> ShardHandle {
    let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ShardCmd>(1);
    let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<ShardReply>(1);
    let thread = std::thread::spawn(move || shard_loop(servers, index, cmd_rx, resp_tx));
    ShardHandle { cmd: cmd_tx, resp: resp_rx, thread: Some(thread) }
}

/// The shard event loop: serve, publish/retract, reply — in that order,
/// so a published snapshot is visible to the router before the reply
/// that acknowledges the request it answered.
fn shard_loop(
    servers: Vec<(u64, EquilibriumServer)>,
    index: SnapshotIndex,
    cmd_rx: Receiver<ShardCmd>,
    resp_tx: SyncSender<ShardReply>,
) {
    let mut servers: HashMap<u64, EquilibriumServer> = servers.into_iter().collect();
    while let Ok(cmd) = cmd_rx.recv() {
        let reply = match cmd {
            ShardCmd::Serve { market, req } => {
                let result = match servers.get_mut(&market) {
                    Some(server) => server.serve(req),
                    None => Err(NumError::Domain {
                        what: "sharded server: market not on this shard",
                        value: market as f64,
                    }),
                };
                match &result {
                    // Any write (or failure) invalidates the published
                    // entry: the router must stop serving the old answer.
                    Ok(Reply::Updated { .. }) | Err(_) => index.retract(market),
                    // A served read publishes its snapshot — the answer
                    // for this market's *current* parameterization, kept
                    // until the next write retracts it.
                    Ok(Reply::Equilibrium { snap, .. }) | Ok(Reply::Sensitivity { snap, .. }) => {
                        index.publish(market, Arc::clone(snap));
                    }
                }
                ShardReply::Served(result)
            }
            ShardCmd::Peek { market } => {
                ShardReply::Peeked(servers.get(&market).and_then(|s| s.peek_current()))
            }
            ShardCmd::Report => {
                let mut stats = ServerStats::default();
                let mut cache = CacheStats::default();
                // Deterministic order for the *sums* is automatic
                // (addition commutes); iterate however the map likes.
                for server in servers.values() {
                    let s = server.stats();
                    stats.updates += s.updates;
                    stats.equilibria += s.equilibria;
                    stats.sensitivities += s.sensitivities;
                    stats.cache_hits += s.cache_hits;
                    stats.tangent_solves += s.tangent_solves;
                    stats.warm_solves += s.warm_solves;
                    stats.cold_solves += s.cold_solves;
                    let c = server.cache_stats();
                    cache.hits += c.hits;
                    cache.misses += c.misses;
                    cache.insertions += c.insertions;
                    cache.evictions += c.evictions;
                    cache.len += c.len;
                    cache.capacity += c.capacity;
                }
                ShardReply::Reported { markets: servers.len(), stats, cache }
            }
            ShardCmd::Shutdown => {
                let _ = resp_tx.send(ShardReply::Stopping);
                return;
            }
        };
        if resp_tx.send(reply).is_err() {
            return; // router gone; nothing left to serve
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;
    use subcomp_core::game::Axis;

    fn market() -> SubsidyGame {
        SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")
    }

    fn markets(n: usize) -> Vec<(u64, SubsidyGame)> {
        (0..n as u64).map(|id| (id, market())).collect()
    }

    #[test]
    fn pinning_is_stable_and_total() {
        for shards in [1usize, 2, 4, 7] {
            for id in 0..64u64 {
                let s = shard_of_market(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_market(id, shards), "pinning must be pure");
            }
        }
        // With one shard everything lands on it.
        assert_eq!(shard_of_market(123456, 1), 0);
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        let cfg = ShardedConfig::default();
        assert!(matches!(ShardedServer::new(Vec::new(), &cfg), Err(NumError::Empty { .. })));
        assert!(matches!(
            ShardedServer::new(markets(1), &ShardedConfig { shards: 0, ..cfg }),
            Err(NumError::Domain { .. })
        ));
        let dup = vec![(3u64, market()), (3u64, market())];
        assert!(matches!(ShardedServer::new(dup, &cfg), Err(NumError::Domain { .. })));
    }

    #[test]
    fn unknown_market_is_a_typed_error() {
        let mut server = ShardedServer::new(markets(2), &ShardedConfig::default()).unwrap();
        assert!(matches!(server.serve(99, Request::Equilibrium), Err(NumError::Domain { .. })));
        assert!(server.shard_of(99).is_none());
    }

    #[test]
    fn first_read_solves_then_reads_go_lockfree() {
        let mut server =
            ShardedServer::new(markets(2), &ShardedConfig { shards: 2, ..Default::default() })
                .unwrap();
        // First read pays a solve on the shard.
        let first = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap: solved, source } = &first else {
            panic!("equilibrium request answered {first:?}")
        };
        assert_eq!(*source, Source::Cold);
        // Second read rides the published snapshot, same allocation.
        let second = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap, source } = &second else {
            panic!("equilibrium request answered {second:?}")
        };
        assert_eq!(*source, Source::LockFree);
        assert!(Arc::ptr_eq(snap, solved));
        assert_eq!(server.lockfree_hits(), 1);
        // The other market is untouched: its first read still solves.
        let other = server.serve(1, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { source, .. } = &other else { unreachable!() };
        assert_eq!(*source, Source::Cold);
    }

    #[test]
    fn writes_retract_the_published_snapshot() {
        let mut server = ShardedServer::new(markets(1), &ShardedConfig::default()).unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        assert!(server.read_cached(0).is_some(), "read published its answer");
        server.serve(0, Request::Update { axis: Axis::Price, value: 0.7 }).unwrap();
        assert!(server.read_cached(0).is_none(), "a write must retract the published snapshot");
        // The next read re-solves (the shard sees it) and re-publishes.
        let reply = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { source, .. } = &reply else { unreachable!() };
        assert_ne!(*source, Source::LockFree);
        assert!(server.read_cached(0).is_some());
    }

    #[test]
    fn sensitivity_reads_always_go_to_the_shard() {
        let mut server = ShardedServer::new(markets(1), &ShardedConfig::default()).unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        let reply = server.serve(0, Request::Sensitivity { axis: Axis::Mu }).unwrap();
        let Reply::Sensitivity { source, .. } = &reply else {
            panic!("sensitivity request answered {reply:?}")
        };
        assert_ne!(*source, Source::LockFree, "derivatives need the shard's solver state");
    }

    #[test]
    fn shard_reports_cover_every_market() {
        let cfg = ShardedConfig { shards: 4, ..Default::default() };
        let mut server = ShardedServer::new(markets(8), &cfg).unwrap();
        for id in 0..8u64 {
            server.serve(id, Request::Equilibrium).unwrap();
        }
        let reports = server.shard_reports().unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.markets).sum::<usize>(), 8);
        let solves: u64 = reports.iter().map(|r| r.stats.cold_solves).sum();
        assert_eq!(solves, 8, "every market paid exactly one cold solve");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.shard, i, "reports arrive in shard order");
        }
    }
}
