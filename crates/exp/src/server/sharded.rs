//! Sharded multi-market serving: session multiplexing over resident
//! markets with a lock-free read path and supervised fault recovery.
//!
//! [`ShardedServer`] hosts many resident markets on `S` worker shards,
//! each shard a thread owning a full [`EquilibriumServer`] per market it
//! is pinned to — resident [`SubsidyGame`], warm workspace pool,
//! fingerprint cache, tangent ladder, all of it. The router in front
//! does three things:
//!
//! * **Pins each market/session id to a shard by stable hash** (FNV-1a
//!   over the id, mod `S`), and serves every request for a market
//!   synchronously through its shard's command channel — so per-market
//!   request order is preserved exactly, and a market's replies are
//!   bit-identical to a standalone `EquilibriumServer` fed the same
//!   subsequence, **whatever the shard count** (markets never share
//!   solver state, caches or workspaces; a shard is an execution host,
//!   nothing more).
//! * **Serves pure reads of already-published equilibria lock-free**:
//!   after a shard answers an equilibrium or sensitivity read, it
//!   publishes the answering snapshot (keyed by its fingerprint) into a
//!   shared [`SnapshotIndex`] (and retracts the market on any write)
//!   *before* replying. A later `Request::Equilibrium` for that market is
//!   then answered by the router as an `Arc` clone out of the index —
//!   [`Source::LockFree`], one atomic generation check plus a hash
//!   lookup, never touching the owning shard's solver state or its
//!   queue.
//! * **Supervises its shards.** Each request is served under
//!   `catch_unwind`: a panic confined to one request drops that market's
//!   resident server, retracts its published answer, and rebuilds the
//!   market from the router's mirror — the in-flight request fails with
//!   the typed [`ServeError::ShardRestarted`], never a hung channel. A
//!   panic that kills the whole shard thread (detected as a channel
//!   failure) triggers a full restart: the dead thread is reaped, its
//!   published entries retracted, the shard respawned, and **every**
//!   market rehydrated from its mirror plus its last published
//!   `EqSnapshot` (cold-solve fallback when nothing is published).
//!
//! **Recovery canonicalization.** A whole-shard kill rehydrates *all*
//! markets, not just the dead shard's. This is deliberate: which markets
//! share a shard depends on the shard count, so a recovery that rebuilt
//! only the dead shard's markets would leave different warm state at
//! different `S` — and the post-recovery reply stream would stop being
//! bit-identical across shard counts. Rehydrating everything resets every
//! market to the same canonical state — a pure function of its mirror
//! game and its last published (fingerprint, snapshot) pair, both of
//! which are shard-count-invariant — so the determinism contract
//! survives the fault. A per-request panic needs no such sweep: it
//! rebuilds exactly one market, which is invariant by itself.
//!
//! The lock-free path is **deterministic** under the synchronous serve
//! discipline: publication happens before the shard's reply is sent, the
//! channel reply synchronizes-with the router's receive, and only the
//! market's own requests can change its published entry — so whether a
//! given request fires the fast path is a pure function of the request
//! stream, independent of shard count and thread timing. It is also
//! **answer-preserving**: the fast path fires only when the owning
//! market server's last answer for the current parameterization is still
//! current (any intervening write retracted the entry), and a skipped
//! cache-hit request would not have changed that server's solver state —
//! so the served bits match the standalone serve exactly. What *does*
//! diverge is bookkeeping: requests absorbed by the router never reach
//! the shard, so per-shard `ServerStats`/cache counters count only the
//! traffic the shard actually saw, and the router tallies
//! [`ShardedServer::lockfree_hits`] separately.
//!
//! [`SnapshotIndex`]: subcomp_core::snapshot::SnapshotIndex

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use subcomp_core::game::SubsidyGame;
use subcomp_core::snapshot::{EqSnapshot, SnapshotIndex, SnapshotReader};
use subcomp_core::workspace::SolveBudget;
use subcomp_num::error::{NumError, NumResult};

use super::{
    CacheStats, EquilibriumServer, Reply, Request, ServeError, ServeResult, ServerStats, Source,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The stable market → shard pinning: FNV-1a over the market id's bytes,
/// reduced mod the shard count. Pure, so tests can predict placements.
pub fn shard_of_market(market: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = FNV_OFFSET;
    for byte in market.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// Construction parameters of a [`ShardedServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Worker shards (threads). At least 1.
    pub shards: usize,
    /// Warm workspaces per resident market.
    pub pool: usize,
    /// Fingerprint-cache capacity per resident market (0 = always-miss).
    pub cache: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig { shards: 1, pool: 2, cache: 64 }
    }
}

/// Injected misbehaviour riding on a single serve call — the fault
/// harness's hook into the shard loop. [`Sabotage::Panic`] panics
/// *inside* the per-request `catch_unwind` guard (market-scoped
/// recovery); [`Sabotage::Kill`] panics *outside* it, taking the whole
/// shard thread down (channel-failure recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No fault: serve normally.
    #[default]
    None,
    /// Panic while serving this request, inside the per-request guard.
    Panic,
    /// Kill the shard thread before serving this request.
    Kill,
}

/// One shard's aggregate view for the deterministic report: how many
/// markets it hosts and the sums of their server/cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Resident markets pinned to this shard.
    pub markets: usize,
    /// Markets currently quarantined on this shard.
    pub quarantined: usize,
    /// Request/answer counters summed over the shard's markets.
    pub stats: ServerStats,
    /// Cache counters summed over the shard's markets (`len`/`capacity`
    /// are summed occupancy, not a single cache's).
    pub cache: CacheStats,
}

/// Commands the router sends a shard. Every command gets exactly one
/// reply on the shard's response channel (unless the command kills the
/// shard, which the router observes as a channel failure).
enum ShardCmd {
    Serve { market: u64, req: Request, sabotage: Sabotage },
    Submit { market: u64, game: Box<SubsidyGame> },
    SetBudget { market: u64, budget: SolveBudget },
    Cool { market: u64 },
    Rehydrate(Box<Rehydrate>),
    Peek { market: u64 },
    Report,
    Shutdown,
}

/// The rehydration payload: everything a shard needs to rebuild one
/// resident market to its canonical post-fault state.
struct Rehydrate {
    market: u64,
    game: SubsidyGame,
    budget: SolveBudget,
    /// The market's last published (fingerprint, snapshot), if any — the
    /// rebuilt server preloads its cache with it so unchanged
    /// parameterizations stay bit-identical cache hits.
    published: Option<(u64, Arc<EqSnapshot>)>,
}

/// Shard → router replies, matched 1:1 with commands.
enum ShardReply {
    Served(ServeResult<Reply>),
    /// The request panicked inside the per-request guard; the market's
    /// resident server was dropped and its published entry retracted.
    Panicked,
    Configured,
    Rehydrated,
    Peeked(Option<Arc<EqSnapshot>>),
    Reported {
        markets: usize,
        quarantined: usize,
        stats: ServerStats,
        cache: CacheStats,
    },
    Stopping,
}

struct ShardHandle {
    cmd: SyncSender<ShardCmd>,
    resp: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
}

/// The router's authoritative record of one market, independent of any
/// shard thread's fate: the game as currently parameterized (updated on
/// every acknowledged write/submit) and the budget in force. Recovery
/// rebuilds resident servers from exactly this.
struct MarketMirror {
    shard: usize,
    game: SubsidyGame,
    budget: SolveBudget,
}

fn closed(context: &'static str) -> NumError {
    NumError::Empty { what: context }
}

/// The sharded multi-market service. See the module docs for the design.
pub struct ShardedServer {
    shards: Vec<ShardHandle>,
    /// market id → mirror (pinning + canonical game + budget).
    markets: HashMap<u64, MarketMirror>,
    index: SnapshotIndex,
    reader: SnapshotReader,
    lockfree_hits: u64,
    pool: usize,
    cache: usize,
    shard_restarts: u64,
    market_rebuilds: u64,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.shards.len())
            .field("markets", &self.markets.len())
            .field("lockfree_hits", &self.lockfree_hits)
            .field("shard_restarts", &self.shard_restarts)
            .field("market_rebuilds", &self.market_rebuilds)
            .finish()
    }
}

impl ShardedServer {
    /// Builds the service over `markets` (id, game) pairs with `cfg.shards`
    /// worker threads. Ids must be unique; each market becomes a full
    /// resident [`EquilibriumServer`] on its pinned shard.
    pub fn new(markets: Vec<(u64, SubsidyGame)>, cfg: &ShardedConfig) -> NumResult<ShardedServer> {
        if cfg.shards == 0 {
            return Err(NumError::Domain { what: "sharded server: shards", value: 0.0 });
        }
        if markets.is_empty() {
            return Err(NumError::Empty { what: "sharded server: markets" });
        }
        let mut mirrors: HashMap<u64, MarketMirror> = HashMap::with_capacity(markets.len());
        let mut per_shard: Vec<Vec<(u64, EquilibriumServer)>> =
            (0..cfg.shards).map(|_| Vec::new()).collect();
        for (id, game) in markets {
            let shard = shard_of_market(id, cfg.shards);
            let mirror =
                MarketMirror { shard, game: game.clone(), budget: SolveBudget::unlimited() };
            if mirrors.insert(id, mirror).is_some() {
                return Err(NumError::Domain {
                    what: "sharded server: duplicate market id",
                    value: id as f64,
                });
            }
            per_shard[shard].push((id, EquilibriumServer::new(game, cfg.pool, cfg.cache)));
        }

        let index = SnapshotIndex::new();
        let reader = index.reader();
        let shards = per_shard
            .into_iter()
            .map(|servers| spawn_shard(servers, index.clone(), cfg.pool, cfg.cache))
            .collect();
        Ok(ShardedServer {
            shards,
            markets: mirrors,
            index,
            reader,
            lockfree_hits: 0,
            pool: cfg.pool,
            cache: cfg.cache,
            shard_restarts: 0,
            market_rebuilds: 0,
        })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident markets across all shards.
    pub fn markets(&self) -> usize {
        self.markets.len()
    }

    /// The shard `market` is pinned to, if it is resident.
    pub fn shard_of(&self, market: u64) -> Option<usize> {
        self.markets.get(&market).map(|m| m.shard)
    }

    /// Equilibrium reads the router answered lock-free, bypassing shards.
    pub fn lockfree_hits(&self) -> u64 {
        self.lockfree_hits
    }

    /// Whole-shard restarts performed (kill recovery).
    pub fn shard_restarts(&self) -> u64 {
        self.shard_restarts
    }

    /// Resident market servers rebuilt from their mirrors — one per
    /// per-request panic, plus every market on a whole-shard restart
    /// (recovery canonicalization; see the module docs).
    pub fn market_rebuilds(&self) -> u64 {
        self.market_rebuilds
    }

    /// A fresh detached reader over the shared snapshot index — the
    /// retraction/generation test hook.
    pub fn index_reader(&self) -> SnapshotReader {
        self.index.reader()
    }

    /// Serves one request for `market`, trying the lock-free snapshot
    /// path first for pure equilibrium reads and falling back to the
    /// owning shard. Per-market order is preserved: the call returns
    /// only after the request is fully answered.
    pub fn serve(&mut self, market: u64, req: Request) -> ServeResult<Reply> {
        if matches!(req, Request::Equilibrium) {
            if let Some(snap) = self.reader.get(market) {
                self.lockfree_hits += 1;
                return Ok(Reply::Equilibrium { snap, source: Source::LockFree });
            }
        }
        self.serve_with(market, req, Sabotage::None)
    }

    /// Serves one request for `market` through its owning shard,
    /// bypassing the lock-free fast path (benches compare the two).
    pub fn serve_direct(&mut self, market: u64, req: Request) -> ServeResult<Reply> {
        self.serve_with(market, req, Sabotage::None)
    }

    /// Serves one request with injected sabotage — the fault harness's
    /// entry point. Always goes to the shard (sabotage must reach the
    /// request loop, so the lock-free fast path is bypassed).
    pub fn serve_sabotaged(
        &mut self,
        market: u64,
        req: Request,
        sabotage: Sabotage,
    ) -> ServeResult<Reply> {
        self.serve_with(market, req, sabotage)
    }

    fn serve_with(&mut self, market: u64, req: Request, sabotage: Sabotage) -> ServeResult<Reply> {
        let shard = self.shard_checked(market)?;
        match self.roundtrip(shard, ShardCmd::Serve { market, req, sabotage })? {
            ShardReply::Served(result) => {
                if let Ok(Reply::Updated { axis, value }) = &result {
                    // Keep the mirror authoritative: replay the write the
                    // shard just validated and applied.
                    let mirror = self.markets.get_mut(&market).expect("pinned market");
                    axis.apply(&mut mirror.game, *value)
                        .expect("mirror accepts what its shard accepted");
                }
                result
            }
            ShardReply::Panicked => {
                // Market-scoped recovery: the shard survived, the market's
                // resident server did not. Rebuild it from the mirror
                // (cold-solve fallback — the panic may have torn the
                // published answer's provenance, so nothing is trusted).
                self.market_rebuilds += 1;
                self.rehydrate(market, None);
                Err(ServeError::ShardRestarted { shard })
            }
            _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
        }
    }

    /// Replaces `market`'s resident game wholesale (and heals a
    /// quarantine). The mirror adopts the game first, so a recovery
    /// racing this submit still converges on the submitted game.
    pub fn submit(&mut self, market: u64, game: SubsidyGame) -> ServeResult<Reply> {
        let shard = self.shard_checked(market)?;
        self.markets.get_mut(&market).expect("pinned market").game = game.clone();
        match self.roundtrip(shard, ShardCmd::Submit { market, game: Box::new(game) })? {
            ShardReply::Served(result) => result,
            _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
        }
    }

    /// Sets `market`'s per-solve sweep budget (mirrored for recovery).
    pub fn set_budget(&mut self, market: u64, budget: SolveBudget) -> ServeResult<()> {
        let shard = self.shard_checked(market)?;
        self.markets.get_mut(&market).expect("pinned market").budget = budget;
        match self.roundtrip(shard, ShardCmd::SetBudget { market, budget })? {
            ShardReply::Configured => Ok(()),
            _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
        }
    }

    /// Drops every warm-start artifact of `market` — the resident
    /// server's workspace seeds, tangent seed and fingerprint cache, and
    /// the router's lock-free index entry — so its next equilibrium
    /// request solves cold through the full shard path. The benchmark
    /// control for warm-vs-cold comparisons (the adoption loop's
    /// `loop_cold` id); the resident game itself is untouched.
    pub fn cool_market(&mut self, market: u64) -> ServeResult<()> {
        let shard = self.shard_checked(market)?;
        match self.roundtrip(shard, ShardCmd::Cool { market })? {
            ShardReply::Configured => Ok(()),
            _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
        }
    }

    /// The pure lock-free read: the published snapshot for `market`, if
    /// any — one atomic generation check plus a hash lookup and an `Arc`
    /// clone, no shard round-trip, no lock in the steady state.
    pub fn read_cached(&mut self, market: u64) -> Option<Arc<EqSnapshot>> {
        self.reader.get(market)
    }

    /// The owning shard's resident cache entry for `market` as currently
    /// parameterized (counterless introspection via
    /// [`EquilibriumServer::peek_current`]) — identity tests compare it
    /// with [`ShardedServer::read_cached`] by `Arc::ptr_eq`.
    pub fn peek_shard_cache(&mut self, market: u64) -> ServeResult<Option<Arc<EqSnapshot>>> {
        let shard = self.shard_checked(market)?;
        match self.roundtrip(shard, ShardCmd::Peek { market })? {
            ShardReply::Peeked(snap) => Ok(snap),
            _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
        }
    }

    /// Per-shard aggregate counters, in shard order — the deterministic
    /// per-shard section of the `serve_market` report.
    pub fn shard_reports(&mut self) -> ServeResult<Vec<ShardReport>> {
        (0..self.shards.len())
            .map(|shard| match self.roundtrip(shard, ShardCmd::Report)? {
                ShardReply::Reported { markets, quarantined, stats, cache } => {
                    Ok(ShardReport { shard, markets, quarantined, stats, cache })
                }
                _ => Err(ServeError::Num(closed("sharded server: shard protocol desync"))),
            })
            .collect()
    }

    /// One synchronous command/reply exchange with `shard`. A channel
    /// failure means the shard thread is dead: the router restarts it,
    /// rehydrates the fleet (see the module docs on canonicalization),
    /// and reports the in-flight request as [`ServeError::ShardRestarted`].
    fn roundtrip(&mut self, shard: usize, cmd: ShardCmd) -> ServeResult<ShardReply> {
        let sent = self.shards[shard].cmd.send(cmd).is_ok();
        let reply = if sent { self.shards[shard].resp.recv().ok() } else { None };
        match reply {
            Some(reply) => Ok(reply),
            None => {
                self.restart_shard(shard);
                Err(ServeError::ShardRestarted { shard })
            }
        }
    }

    /// Kill recovery: reap the dead thread, retract its published
    /// answers, respawn the shard empty, then rehydrate **every** market
    /// (sorted by id, so recovery work is deterministic) from its mirror
    /// plus its last published snapshot.
    fn restart_shard(&mut self, dead: usize) {
        self.shard_restarts += 1;
        if let Some(thread) = self.shards[dead].thread.take() {
            // Reap the worker; a panic payload is expected and discarded.
            let _ = thread.join();
        }
        let mut ids: Vec<u64> = self.markets.keys().copied().collect();
        ids.sort_unstable();
        // Capture rehydration sources before retracting anything.
        let sources: Vec<(u64, Option<(u64, Arc<EqSnapshot>)>)> =
            ids.iter().map(|&id| (id, self.index.published(id))).collect();
        // The dead shard's published answers go first: no reader may be
        // served an equilibrium whose host no longer exists.
        for &id in &ids {
            if self.markets[&id].shard == dead {
                self.index.retract(id);
            }
        }
        self.shards[dead] = spawn_shard(Vec::new(), self.index.clone(), self.pool, self.cache);
        for (id, published) in sources {
            self.market_rebuilds += 1;
            self.rehydrate(id, published);
        }
    }

    /// Rebuilds one market's resident server on its owning shard from the
    /// mirror, preloading `published` when given. Best-effort: if the
    /// shard dies *during* rehydration (only a genuine bug can cause
    /// that — sabotage rides exclusively on serve commands), the shard is
    /// respawned empty and the market stays recoverable via submit.
    fn rehydrate(&mut self, market: u64, published: Option<(u64, Arc<EqSnapshot>)>) {
        let mirror = &self.markets[&market];
        let shard = mirror.shard;
        let cmd = ShardCmd::Rehydrate(Box::new(Rehydrate {
            market,
            game: mirror.game.clone(),
            budget: mirror.budget,
            published,
        }));
        let handle = &self.shards[shard];
        let ok = handle.cmd.send(cmd).is_ok()
            && matches!(handle.resp.recv(), Ok(ShardReply::Rehydrated));
        if !ok {
            if let Some(thread) = self.shards[shard].thread.take() {
                let _ = thread.join();
            }
            self.index.retract(market);
            self.shards[shard] = spawn_shard(Vec::new(), self.index.clone(), self.pool, self.cache);
        }
    }

    fn shard_checked(&self, market: u64) -> ServeResult<usize> {
        self.shard_of(market).ok_or(ServeError::Num(NumError::Domain {
            what: "sharded server: unknown market id",
            value: market as f64,
        }))
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        for handle in &mut self.shards {
            // A dead shard thread has already dropped its receiver; both
            // sends and the join stay best-effort during teardown.
            if handle.cmd.send(ShardCmd::Shutdown).is_ok() {
                let _ = handle.resp.recv();
            }
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// Spawns one shard thread over its pinned market servers. Channels are
/// bounded rendezvous-style (`sync_channel(1)`): the router serves
/// synchronously, so depth 1 never blocks, and sends move only the
/// fixed-size command/reply values — no allocation per request on the
/// router side.
fn spawn_shard(
    servers: Vec<(u64, EquilibriumServer)>,
    index: SnapshotIndex,
    pool: usize,
    cache: usize,
) -> ShardHandle {
    let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ShardCmd>(1);
    let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel::<ShardReply>(1);
    let thread =
        std::thread::spawn(move || shard_loop(servers, index, pool, cache, cmd_rx, resp_tx));
    ShardHandle { cmd: cmd_tx, resp: resp_rx, thread: Some(thread) }
}

/// Publishes or retracts `market`'s index entry to match `result` — the
/// one place the publish/retract discipline lives. Successful full reads
/// publish under the server's current fingerprint; writes, errors and
/// partial answers retract.
fn sync_index(index: &SnapshotIndex, market: u64, result: &ServeResult<Reply>, key: Option<u64>) {
    match result {
        Ok(Reply::Equilibrium { source: Source::Partial, .. })
        | Ok(Reply::Updated { .. })
        | Err(_) => index.retract(market),
        Ok(Reply::Equilibrium { snap, .. })
        | Ok(Reply::Sensitivity { snap, .. })
        | Ok(Reply::Degenerate { snap, .. }) => match key {
            Some(fp) => index.publish(market, fp, Arc::clone(snap)),
            None => index.retract(market),
        },
    }
}

/// The shard event loop: serve, publish/retract, reply — in that order,
/// so a published snapshot is visible to the router before the reply
/// that acknowledges the request it answered. Each serve runs under a
/// per-request `catch_unwind`; a caught panic drops the market's server
/// (its invariants may be torn mid-panic) and answers
/// [`ShardReply::Panicked`] so the router can rebuild from its mirror.
fn shard_loop(
    servers: Vec<(u64, EquilibriumServer)>,
    index: SnapshotIndex,
    pool: usize,
    cache: usize,
    cmd_rx: Receiver<ShardCmd>,
    resp_tx: SyncSender<ShardReply>,
) {
    let mut servers: HashMap<u64, EquilibriumServer> = servers.into_iter().collect();
    while let Ok(cmd) = cmd_rx.recv() {
        let reply = match cmd {
            ShardCmd::Serve { market, req, sabotage } => {
                if sabotage == Sabotage::Kill {
                    // Outside the per-request guard: the thread dies and
                    // the router recovers via the channel-failure path.
                    panic!("fault injection: shard kill");
                }
                let outcome = match servers.get_mut(&market) {
                    Some(server) => {
                        // AssertUnwindSafe is sound here because a caught
                        // panic drops the server below — no state torn
                        // mid-panic ever serves again.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            if sabotage == Sabotage::Panic {
                                panic!("fault injection: request panic");
                            }
                            server.serve(req)
                        }))
                    }
                    None => Ok(Err(ServeError::Num(NumError::Domain {
                        what: "sharded server: market not on this shard",
                        value: market as f64,
                    }))),
                };
                match outcome {
                    Ok(result) => {
                        let key = servers.get(&market).and_then(|s| s.current_key());
                        sync_index(&index, market, &result, key);
                        ShardReply::Served(result)
                    }
                    Err(_) => {
                        servers.remove(&market);
                        index.retract(market);
                        ShardReply::Panicked
                    }
                }
            }
            ShardCmd::Submit { market, game } => {
                let result = match servers.get_mut(&market) {
                    Some(server) => server.submit(*game),
                    None => {
                        // A market lost to a failed rehydration: a submit
                        // re-provisions it from scratch — the universal
                        // heal.
                        let mut server = EquilibriumServer::new(*game, pool, cache);
                        let r = server.equilibrium();
                        servers.insert(market, server);
                        r
                    }
                };
                let result: ServeResult<Reply> = result
                    .map(|(snap, source)| Reply::Equilibrium { snap, source })
                    .map_err(ServeError::from);
                let key = servers.get(&market).and_then(|s| s.current_key());
                sync_index(&index, market, &result, key);
                ShardReply::Served(result)
            }
            ShardCmd::SetBudget { market, budget } => {
                if let Some(server) = servers.get_mut(&market) {
                    server.set_budget(budget);
                }
                ShardReply::Configured
            }
            ShardCmd::Cool { market } => {
                if let Some(server) = servers.get_mut(&market) {
                    server.cool();
                    server.invalidate_cache();
                }
                // A cooled market must not keep answering out of the
                // router's lock-free index either — that would defeat
                // the point of forcing the next solve cold.
                index.retract(market);
                ShardReply::Configured
            }
            ShardCmd::Rehydrate(rehydrate) => {
                let Rehydrate { market, game, budget, published } = *rehydrate;
                let mut server = EquilibriumServer::new(game, pool, cache).with_budget(budget);
                match published {
                    Some((fp, snap)) => {
                        // The published answer is only present when no
                        // write followed the read that produced it, so it
                        // answers the mirror's current parameterization:
                        // preload it and republish the same allocation.
                        server.preload(fp, Arc::clone(&snap));
                        index.publish(market, fp, snap);
                    }
                    None => {
                        // Cold-solve fallback. `current_key` is None for
                        // partial answers, so starved or failing markets
                        // publish nothing and stay resident-but-erroring
                        // until a submit heals them.
                        index.retract(market);
                        if let Ok((snap, _)) = server.equilibrium() {
                            if let Some(fp) = server.current_key() {
                                index.publish(market, fp, snap);
                            }
                        }
                    }
                }
                servers.insert(market, server);
                ShardReply::Rehydrated
            }
            ShardCmd::Peek { market } => {
                ShardReply::Peeked(servers.get(&market).and_then(|s| s.peek_current()))
            }
            ShardCmd::Report => {
                let mut stats = ServerStats::default();
                let mut cache = CacheStats::default();
                let mut quarantined = 0usize;
                // Deterministic order for the *sums* is automatic
                // (addition commutes); iterate however the map likes.
                for server in servers.values() {
                    let s = server.stats();
                    stats.updates += s.updates;
                    stats.equilibria += s.equilibria;
                    stats.sensitivities += s.sensitivities;
                    stats.cache_hits += s.cache_hits;
                    stats.tangent_solves += s.tangent_solves;
                    stats.warm_solves += s.warm_solves;
                    stats.cold_solves += s.cold_solves;
                    stats.partial_solves += s.partial_solves;
                    let c = server.cache_stats();
                    cache.hits += c.hits;
                    cache.misses += c.misses;
                    cache.insertions += c.insertions;
                    cache.evictions += c.evictions;
                    cache.len += c.len;
                    cache.capacity += c.capacity;
                    quarantined += usize::from(server.is_quarantined());
                }
                ShardReply::Reported { markets: servers.len(), quarantined, stats, cache }
            }
            ShardCmd::Shutdown => {
                let _ = resp_tx.send(ShardReply::Stopping);
                return;
            }
        };
        if resp_tx.send(reply).is_err() {
            return; // router gone; nothing left to serve
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;
    use subcomp_core::game::Axis;

    fn market() -> SubsidyGame {
        SubsidyGame::new(section5_system(), 0.6, 0.8).expect("§5 market is valid")
    }

    fn markets(n: usize) -> Vec<(u64, SubsidyGame)> {
        (0..n as u64).map(|id| (id, market())).collect()
    }

    #[test]
    fn pinning_is_stable_and_total() {
        for shards in [1usize, 2, 4, 7] {
            for id in 0..64u64 {
                let s = shard_of_market(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_market(id, shards), "pinning must be pure");
            }
        }
        // With one shard everything lands on it.
        assert_eq!(shard_of_market(123456, 1), 0);
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        let cfg = ShardedConfig::default();
        assert!(matches!(ShardedServer::new(Vec::new(), &cfg), Err(NumError::Empty { .. })));
        assert!(matches!(
            ShardedServer::new(markets(1), &ShardedConfig { shards: 0, ..cfg }),
            Err(NumError::Domain { .. })
        ));
        let dup = vec![(3u64, market()), (3u64, market())];
        assert!(matches!(ShardedServer::new(dup, &cfg), Err(NumError::Domain { .. })));
    }

    #[test]
    fn unknown_market_is_a_typed_error() {
        let mut server = ShardedServer::new(markets(2), &ShardedConfig::default()).unwrap();
        assert!(matches!(
            server.serve(99, Request::Equilibrium),
            Err(ServeError::Num(NumError::Domain { .. }))
        ));
        assert!(server.shard_of(99).is_none());
    }

    #[test]
    fn first_read_solves_then_reads_go_lockfree() {
        let mut server =
            ShardedServer::new(markets(2), &ShardedConfig { shards: 2, ..Default::default() })
                .unwrap();
        // First read pays a solve on the shard.
        let first = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap: solved, source } = &first else {
            panic!("equilibrium request answered {first:?}")
        };
        assert_eq!(*source, Source::Cold);
        // Second read rides the published snapshot, same allocation.
        let second = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { snap, source } = &second else {
            panic!("equilibrium request answered {second:?}")
        };
        assert_eq!(*source, Source::LockFree);
        assert!(Arc::ptr_eq(snap, solved));
        assert_eq!(server.lockfree_hits(), 1);
        // The other market is untouched: its first read still solves.
        let other = server.serve(1, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { source, .. } = &other else { unreachable!() };
        assert_eq!(*source, Source::Cold);
    }

    #[test]
    fn writes_retract_the_published_snapshot() {
        let mut server = ShardedServer::new(markets(1), &ShardedConfig::default()).unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        assert!(server.read_cached(0).is_some(), "read published its answer");
        server.serve(0, Request::Update { axis: Axis::Price, value: 0.7 }).unwrap();
        assert!(server.read_cached(0).is_none(), "a write must retract the published snapshot");
        // The next read re-solves (the shard sees it) and re-publishes.
        let reply = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { source, .. } = &reply else { unreachable!() };
        assert_ne!(*source, Source::LockFree);
        assert!(server.read_cached(0).is_some());
    }

    #[test]
    fn cool_market_forces_the_next_solve_cold() {
        let mut server = ShardedServer::new(markets(2), &ShardedConfig::default()).unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        server.serve(1, Request::Equilibrium).unwrap();
        assert!(server.read_cached(0).is_some());
        // Cooling drops the published entry, the fingerprint cache and
        // every warm seed: the next read pays a full cold solve.
        server.cool_market(0).unwrap();
        assert!(server.read_cached(0).is_none(), "cool must retract the published snapshot");
        let reply = server.serve(0, Request::Equilibrium).unwrap();
        let Reply::Equilibrium { source, .. } = &reply else { unreachable!() };
        assert_eq!(*source, Source::Cold);
        // The other market's published answer is untouched.
        assert!(server.read_cached(1).is_some());
        // Unknown markets stay a typed error.
        assert!(matches!(server.cool_market(99), Err(ServeError::Num(NumError::Domain { .. }))));
    }

    #[test]
    fn sensitivity_reads_always_go_to_the_shard() {
        let mut server = ShardedServer::new(markets(1), &ShardedConfig::default()).unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        let reply = server.serve(0, Request::Sensitivity { axis: Axis::Mu }).unwrap();
        let Reply::Sensitivity { source, .. } = &reply else {
            panic!("sensitivity request answered {reply:?}")
        };
        assert_ne!(*source, Source::LockFree, "derivatives need the shard's solver state");
    }

    #[test]
    fn shard_reports_cover_every_market() {
        let cfg = ShardedConfig { shards: 4, ..Default::default() };
        let mut server = ShardedServer::new(markets(8), &cfg).unwrap();
        for id in 0..8u64 {
            server.serve(id, Request::Equilibrium).unwrap();
        }
        let reports = server.shard_reports().unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.markets).sum::<usize>(), 8);
        assert_eq!(reports.iter().map(|r| r.quarantined).sum::<usize>(), 0);
        let solves: u64 = reports.iter().map(|r| r.stats.cold_solves).sum();
        assert_eq!(solves, 8, "every market paid exactly one cold solve");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.shard, i, "reports arrive in shard order");
        }
    }

    #[test]
    fn request_panic_rebuilds_only_that_market() {
        let mut server =
            ShardedServer::new(markets(2), &ShardedConfig { shards: 1, ..Default::default() })
                .unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        server.serve(1, Request::Equilibrium).unwrap();
        let err = server.serve_sabotaged(0, Request::Equilibrium, Sabotage::Panic);
        assert!(matches!(err, Err(ServeError::ShardRestarted { shard: 0 })));
        assert_eq!(server.shard_restarts(), 0, "the shard thread survived");
        assert_eq!(server.market_rebuilds(), 1);
        // Both markets keep serving; the rebuilt one republished during
        // rehydration, so its next read is lock-free again.
        assert!(server.serve(0, Request::Equilibrium).is_ok());
        assert!(server.serve(1, Request::Equilibrium).is_ok());
    }

    #[test]
    fn shard_kill_restarts_and_rehydrates() {
        let mut server =
            ShardedServer::new(markets(2), &ShardedConfig { shards: 1, ..Default::default() })
                .unwrap();
        server.serve(0, Request::Equilibrium).unwrap();
        let err = server.serve_sabotaged(1, Request::Equilibrium, Sabotage::Kill);
        assert!(matches!(err, Err(ServeError::ShardRestarted { shard: 0 })));
        assert_eq!(server.shard_restarts(), 1);
        assert_eq!(server.market_rebuilds(), 2, "fleet-wide canonical reset");
        // Everything keeps serving after the restart.
        assert!(server.serve(0, Request::Equilibrium).is_ok());
        assert!(server.serve(1, Request::Equilibrium).is_ok());
        let reports = server.shard_reports().unwrap();
        assert_eq!(reports.iter().map(|r| r.markets).sum::<usize>(), 2);
    }
}
