//! Fingerprint-keyed equilibrium cache with LRU eviction and snapshot
//! recycling.
//!
//! The cache maps a canonical game fingerprint (see
//! [`super::fingerprint::fingerprint`]) to an
//! `Arc<`[`EqSnapshot`]`>`. A hit hands out an `Arc` clone — a refcount
//! bump, no copy, no allocation — which is what makes repeated queries
//! O(lookup).
//!
//! Recycling keeps the *steady state* allocation-free too: evicted
//! snapshots retire to a freelist, and [`EqCache::blank`] hands them back
//! as capture buffers for the next insert once every outstanding reader
//! has dropped its `Arc` (uniqueness is checked with
//! [`Arc::strong_count`]; a snapshot some reader still holds is simply
//! dropped from the freelist — immutability is never compromised). The
//! map and freelist reserve `capacity + 1` slots up front, so
//! evict-then-insert churn at capacity touches no allocator either.
//!
//! Eviction is least-recently-used under a monotone logical clock, with
//! the smaller key winning ties — fully deterministic, so a replayed
//! request stream reproduces the exact same hit/miss/eviction sequence.

use std::collections::HashMap;
use std::sync::Arc;
use subcomp_core::snapshot::EqSnapshot;

/// Hit/miss/eviction counters plus occupancy, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Snapshots inserted.
    pub insertions: u64,
    /// Snapshots evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

struct Entry {
    snap: Arc<EqSnapshot>,
    last_used: u64,
}

/// A bounded, deterministic LRU cache of solved equilibria.
pub struct EqCache {
    capacity: usize,
    clock: u64,
    map: HashMap<u64, Entry>,
    free: Vec<Arc<EqSnapshot>>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl std::fmt::Debug for EqCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EqCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl EqCache {
    /// A cache holding at most `capacity` equilibria. Capacity 0 is a
    /// valid **always-miss** cache: every lookup misses and every insert
    /// retires its snapshot straight to the freelist (counted as an
    /// insertion plus an immediate eviction), so capture-buffer recycling
    /// keeps working with caching disabled.
    pub fn new(capacity: usize) -> EqCache {
        EqCache {
            capacity,
            clock: 0,
            map: HashMap::with_capacity(capacity + 1),
            free: Vec::with_capacity(capacity + 1),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<EqSnapshot>> {
        self.clock += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&entry.snap))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// A unique (`strong_count == 1`) snapshot buffer to capture into —
    /// recycled from the freelist when possible, freshly allocated only
    /// when every retired snapshot is still held by a reader.
    pub fn blank(&mut self) -> Arc<EqSnapshot> {
        while let Some(arc) = self.free.pop() {
            if Arc::strong_count(&arc) == 1 {
                return arc;
            }
            // A reader still holds it; let the reader's drop free it.
        }
        Arc::new(EqSnapshot::empty())
    }

    /// Inserts `snap` under `key`, evicting the least-recently-used entry
    /// if the cache is full (ties broken toward the smaller key). The
    /// evicted snapshot retires to the freelist for [`EqCache::blank`].
    pub fn insert(&mut self, key: u64, snap: Arc<EqSnapshot>) {
        self.clock += 1;
        if self.capacity == 0 {
            // Always-miss mode: nothing can reside, so the snapshot is
            // evicted at birth — but it still retires to the freelist so
            // the blank()/capture recycling loop stays allocation-free.
            if self.free.len() < self.free.capacity() {
                self.free.push(snap);
            }
            self.insertions += 1;
            self.evictions += 1;
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            let victim = self
                .map
                .iter()
                .map(|(&k, e)| (e.last_used, k))
                .min()
                .map(|(_, k)| k)
                .expect("cache is full with capacity >= 1, so non-empty");
            let entry = self.map.remove(&victim).expect("victim key just found");
            self.free.push(entry.snap);
            self.evictions += 1;
        }
        self.map.insert(key, Entry { snap, last_used: self.clock });
        self.insertions += 1;
    }

    /// Whether `key` is resident (no recency touch, no counter bump).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// The resident snapshot for `key`, with **no** recency touch and no
    /// counter bump — introspection for tests and the sharded router's
    /// identity checks, never a serving path (it would perturb LRU
    /// replay determinism).
    pub fn peek(&self, key: u64) -> Option<Arc<EqSnapshot>> {
        self.map.get(&key).map(|entry| Arc::clone(&entry.snap))
    }

    /// Drops every entry (retiring snapshots to the freelist) while
    /// keeping the map's reserved capacity. Counters are kept — a clear
    /// is an operational event, not a reset.
    pub fn clear(&mut self) {
        for (_, entry) in self.map.drain() {
            if self.free.len() < self.free.capacity() {
                self.free.push(entry.snap);
            }
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Capture semantics are exercised by the server tests; here only
    // identity and bookkeeping matter, so empty snapshots suffice.
    fn snap() -> Arc<EqSnapshot> {
        Arc::new(EqSnapshot::empty())
    }

    #[test]
    fn hit_returns_same_snapshot() {
        let mut cache = EqCache::new(4);
        let s = snap();
        cache.insert(7, Arc::clone(&s));
        let hit = cache.get(7).expect("hit");
        assert!(Arc::ptr_eq(&hit, &s), "a hit is the same allocation, not a copy");
        assert!(cache.get(8).is_none());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.len), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut cache = EqCache::new(2);
        cache.insert(1, snap());
        cache.insert(2, snap());
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, snap());
        assert!(cache.contains(1));
        assert!(!cache.contains(2), "LRU entry evicted");
        assert!(cache.contains(3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn blank_recycles_unique_retired_snapshots() {
        let mut cache = EqCache::new(1);
        cache.insert(1, snap());
        cache.insert(2, snap()); // evicts key 1's snapshot to the freelist
        let recycled = cache.blank();
        assert_eq!(Arc::strong_count(&recycled), 1);
        // A retired snapshot still held by a reader is NOT handed out.
        let held = cache.get(2).unwrap();
        cache.insert(3, snap()); // retires key 2's snapshot, reader `held` alive
        let fresh = cache.blank();
        assert!(!Arc::ptr_eq(&fresh, &held));
        drop(held);
    }

    #[test]
    fn clear_keeps_counters_and_capacity() {
        let mut cache = EqCache::new(3);
        cache.insert(1, snap());
        assert!(cache.get(1).is_some());
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().hits, 1, "clear is not a counter reset");
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn zero_capacity_is_a_valid_always_miss_cache() {
        // The regression behind `.expect("cache is full, so non-empty")`:
        // inserting into a capacity-0 cache used to look for an eviction
        // victim in an empty map and panic. It is now a well-defined
        // always-miss cache.
        let mut cache = EqCache::new(0);
        cache.insert(1, snap());
        assert!(cache.get(1).is_none(), "nothing can reside at capacity 0");
        let st = cache.stats();
        assert_eq!((st.capacity, st.len), (0, 0));
        assert_eq!((st.insertions, st.evictions), (1, 1), "insert counts as evict-at-birth");
        assert_eq!((st.hits, st.misses), (0, 1));
        // The recycling loop still works: the retired snapshot comes
        // back as the next capture buffer.
        let recycled = cache.blank();
        assert_eq!(Arc::strong_count(&recycled), 1);
        cache.insert(2, recycled);
        assert!(!cache.contains(2));
    }

    #[test]
    fn eviction_at_capacity_one_keeps_only_the_newest_entry() {
        let mut cache = EqCache::new(1);
        cache.insert(1, snap());
        assert!(cache.get(1).is_some());
        cache.insert(2, snap());
        assert!(!cache.contains(1), "capacity 1 evicts the previous entry");
        assert!(cache.get(2).is_some());
        let st = cache.stats();
        assert_eq!((st.len, st.insertions, st.evictions), (1, 2, 1));
        // Re-inserting the resident key replaces in place, no eviction.
        cache.insert(2, snap());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 1);
    }

    #[test]
    fn peek_is_counterless_introspection() {
        let mut cache = EqCache::new(2);
        let s = snap();
        cache.insert(7, Arc::clone(&s));
        let before = cache.stats();
        let peeked = cache.peek(7).expect("resident");
        assert!(Arc::ptr_eq(&peeked, &s), "peek hands out the shared snapshot");
        assert!(cache.peek(8).is_none());
        assert_eq!(cache.stats(), before, "peek must not move any counter");
    }
}
