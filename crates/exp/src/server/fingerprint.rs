//! Canonical game fingerprints — the cache key of the equilibrium server.
//!
//! Two games that are the same market must hash to the same 64-bit key,
//! and any parameter the equilibrium depends on must perturb it. The
//! fingerprint therefore covers:
//!
//! * the scalar parameters every [`Axis`] can write — price `p`, cap `q`,
//!   capacity `µ`, and each provider's profitability `v_i`;
//! * the clamp-at-zero flag (two games differing only there have
//!   different equilibria);
//! * a *behavioral probe* of each provider's demand and throughput
//!   curves: `n_i(t)` and `λ_i(φ)` sampled at fixed probe points. The
//!   curves live behind trait objects, so structural hashing is
//!   impossible — but two CPs that agree on profitability and on all
//!   probe responses are (for cache purposes) the same provider, and a
//!   full-game submission with different curves lands on a different key.
//!
//! Float bits are canonicalized so `-0.0` and `0.0` — equal as market
//! parameters — produce the same key (the golden-codec round-trip keeps
//! the two distinguishable as *bytes*; the fingerprint must not). A
//! **non-finite** probe response is a typed [`NumError::NonFinite`]
//! instead of a key: NaN never compares equal to itself, so a NaN-bearing
//! fingerprint would never match its own cache entry and every lookup of
//! that market would silently miss. Scalar parameters are validated at
//! write time, but the probed curves are caller-supplied trait objects
//! and can return anything — the fingerprint is where that surface is
//! screened, and the server turns the error into a failed request.
//!
//! Hashing is FNV-1a over the canonical bit stream: deterministic across
//! runs and platforms, and allocation-free.
//!
//! [`Axis`]: subcomp_core::game::Axis

use subcomp_core::game::SubsidyGame;
use subcomp_num::error::{NumError, NumResult};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fingerprint format version — bump when the probe set or field order
/// changes, so stale cache keys can never alias new ones.
const VERSION: u64 = 1;

/// Effective prices at which each provider's demand curve is probed.
const PROBE_PRICES: [f64; 3] = [0.25, 0.75, 1.5];

/// Utilizations at which each provider's throughput curve is probed.
const PROBE_PHIS: [f64; 3] = [0.2, 0.5, 0.9];

/// `-0.0` and `0.0` are the same market parameter; give them one bit
/// pattern. A non-finite value has no canonical pattern at all — it
/// would poison the key (see the module docs), so it is rejected here
/// with the name of the quantity that produced it.
fn canonical_bits(what: &'static str, x: f64) -> NumResult<u64> {
    if !x.is_finite() {
        return Err(NumError::NonFinite { what, at: x });
    }
    Ok(if x == 0.0 { 0 } else { x.to_bits() })
}

/// FNV-1a over one 64-bit word, byte by byte.
fn mix(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical 64-bit fingerprint of a game, or a typed error if any
/// covered parameter or probe response is non-finite. Allocation-free.
pub fn fingerprint(game: &SubsidyGame) -> NumResult<u64> {
    let mut h = mix(FNV_OFFSET, VERSION);
    h = mix(h, game.n() as u64);
    h = mix(h, game.clamps_effective_price() as u64);
    h = mix(h, canonical_bits("fingerprint: capacity µ", game.system().mu())?);
    h = mix(h, canonical_bits("fingerprint: price p", game.price())?);
    h = mix(h, canonical_bits("fingerprint: cap q", game.cap())?);
    for cp in game.system().cps() {
        h = mix(h, canonical_bits("fingerprint: profitability v_i", cp.profitability())?);
        for t in PROBE_PRICES {
            h = mix(h, canonical_bits("fingerprint: demand probe n_i(t)", cp.population(t))?);
        }
        for phi in PROBE_PHIS {
            h = mix(h, canonical_bits("fingerprint: throughput probe λ_i(φ)", cp.lambda(phi))?);
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{random_system, section3_system};
    use subcomp_core::game::Axis;

    fn game() -> SubsidyGame {
        SubsidyGame::new(section3_system(), 0.6, 0.8).unwrap()
    }

    fn key(game: &SubsidyGame) -> u64 {
        fingerprint(game).expect("finite market fingerprints cleanly")
    }

    #[test]
    fn deterministic_and_axis_sensitive() {
        let base = key(&game());
        assert_eq!(base, key(&game()), "same game, same key");
        for axis in [Axis::Price, Axis::Cap, Axis::Mu, Axis::Profitability(0)] {
            let mut g = game();
            let v = axis.value(&g);
            axis.apply(&mut g, v + 0.05).unwrap();
            assert_ne!(base, key(&g), "{} must perturb the key", axis.describe());
            // Writing the original value back restores the key exactly.
            axis.apply(&mut g, v).unwrap();
            assert_eq!(base, key(&g));
        }
    }

    #[test]
    fn clamp_flag_and_market_shape_are_covered() {
        let base = key(&game());
        let clamped = game().with_clamped_price(true);
        assert_ne!(base, key(&clamped));
        let other = SubsidyGame::new(random_system(4, 99, 1.0), 0.6, 0.8).unwrap();
        assert_ne!(base, key(&other));
    }

    #[test]
    fn negative_zero_price_aliases_positive_zero() {
        // A cap of -0.0 and 0.0 describe the same regulation; the cache
        // must not solve the market twice.
        let a = SubsidyGame::new(section3_system(), 0.6, 0.0).unwrap();
        let b = SubsidyGame::new(section3_system(), 0.6, -0.0).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn non_finite_canonical_bits_are_typed_errors() {
        // The scalar screening primitive itself: NaN and both infinities
        // are rejected with the quantity's name; finite values pass.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match canonical_bits("fingerprint: demand probe n_i(t)", bad) {
                Err(NumError::NonFinite { what, .. }) => {
                    assert!(what.contains("fingerprint"), "error lost its context: {what}");
                }
                other => panic!("non-finite value produced {other:?}"),
            }
        }
        assert_eq!(canonical_bits("x", -0.0).unwrap(), 0);
        assert_eq!(canonical_bits("x", 1.5).unwrap(), 1.5f64.to_bits());
    }
}
