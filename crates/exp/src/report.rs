//! Plain-text reporting: aligned tables, CSV files, sparklines.
//!
//! The experiment binaries print the same series the paper plots; a
//! terminal can't render MATLAB figures, so each figure becomes (a) an
//! aligned numeric table, (b) a unicode sparkline per series for shape
//! recognition at a glance, and (c) a CSV under `results/` for external
//! plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An aligned ASCII table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    precision: usize,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            precision: 4,
        }
    }

    /// Sets the numeric precision (decimal places) for [`Table::row`].
    pub fn with_precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Adds a numeric row.
    pub fn row(&mut self, values: &[f64]) -> &mut Self {
        let p = self.precision;
        self.rows.push(values.iter().map(|v| format!("{v:.p$}")).collect());
        self
    }

    /// Adds a row of preformatted cells.
    pub fn row_strings(&mut self, values: &[String]) -> &mut Self {
        self.rows.push(values.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (j, cell) in row.iter().enumerate().take(cols) {
                widths[j] = widths[j].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep_row = |out: &mut String| {
            for (j, w) in widths.iter().enumerate() {
                let _ = write!(out, "{}{}", "-".repeat(w + 2), if j + 1 < cols { "+" } else { "" });
            }
            out.push('\n');
        };
        for (j, h) in self.header.iter().enumerate() {
            let _ = write!(out, " {h:>w$} {}", if j + 1 < cols { "|" } else { "" }, w = widths[j]);
        }
        out.push('\n');
        sep_row(&mut out);
        for row in &self.rows {
            for j in 0..cols {
                let cell = row.get(j).map(String::as_str).unwrap_or("");
                let _ = write!(
                    out,
                    " {cell:>w$} {}",
                    if j + 1 < cols { "|" } else { "" },
                    w = widths[j]
                );
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a unicode sparkline of a series (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "·".repeat(values.len());
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                '·'
            } else {
                let idx = (((v - lo) / span) * 7.0).round() as usize;
                TICKS[idx.min(7)]
            }
        })
        .collect()
}

/// Writes a CSV file with a header row and column-major data.
///
/// `columns` pairs a name with its values; all columns must have equal
/// length. Creates parent directories as needed.
pub fn write_csv(path: &Path, columns: &[(&str, &[f64])]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let rows = columns.first().map(|(_, v)| v.len()).unwrap_or(0);
    for (name, v) in columns {
        if v.len() != rows {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("column {name} has {} rows, expected {rows}", v.len()),
            ));
        }
    }
    let mut out = String::new();
    let header: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in 0..rows {
        let row: Vec<String> = columns.iter().map(|(_, v)| format!("{:.10e}", v[r])).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// The default results directory (`results/` under the workspace root, or
/// the current directory when run elsewhere).
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["p", "theta"]).with_precision(2);
        t.row(&[0.5, 1.25]);
        t.row(&[10.0, 0.01]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("p"));
        assert!(lines[2].contains("0.50"));
        assert!(lines[3].contains("10.00"));
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn table_string_rows() {
        let mut t = Table::new(&["cp", "note"]);
        t.row_strings(&["a2-b5".into(), "pinned".into()]);
        assert!(t.render().contains("pinned"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.chars().count(), 3);
    }

    #[test]
    fn sparkline_handles_nan() {
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().nth(1), Some('·'));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("subcomp_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &[("x", &[1.0, 2.0]), ("y", &[3.0, 4.0])]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_rejects_ragged_columns() {
        let dir = std::env::temp_dir().join("subcomp_csv_test2");
        let path = dir.join("t.csv");
        let e = write_csv(&path, &[("x", &[1.0, 2.0]), ("y", &[3.0])]);
        assert!(e.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
