//! Golden-snapshot engine: a hand-rolled JSON codec (offline — no serde),
//! snapshot flattening, and tolerance-aware diffing.
//!
//! Every scenario in [`crate::corpus`] pins its full equilibrium record to
//! a committed file under `tests/golden/`. The codec here is deliberately
//! minimal and deterministic: objects preserve insertion order, floats are
//! rendered with Rust's shortest round-trip formatting (`{:?}`), and the
//! renderer is stable byte-for-byte across runs — `regen_golden` run twice
//! produces identical files.
//!
//! Comparison is *not* byte-level: goldens are parsed back and diffed
//! field-by-field under the per-field tolerance policy of
//! [`snapshot_tolerances`], so harmless float drift (a refactor that
//! reorders additions) passes while a shifted equilibrium fails with a
//! named, readable diff.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendering is
/// deterministic and diffs against committed files stay minimal.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key–value pairs).
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics if `self` is not an object — the
    /// snapshot builders only ever call this on [`Json::obj`]).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builds an array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number held, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string held, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    ///
    /// Scalar-only arrays render on one line; nested structures indent by
    /// two spaces per level. Panics on non-finite numbers — snapshots must
    /// encode only finite values (guard upstream).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders like [`Json::render`], but rejects non-finite numbers with
    /// an explicit [`JsonError`] naming the offending path instead of
    /// panicking (and instead of ever emitting `NaN`/`inf` tokens that no
    /// JSON parser — including [`Json::parse`] — would accept back).
    ///
    /// Use this on values built from untrusted or runtime data (e.g. the
    /// server cache serializer); the panicking [`Json::render`] stays for
    /// snapshot builders whose inputs are validated upstream.
    pub fn try_render(&self) -> Result<String, JsonError> {
        self.check_finite("$")?;
        Ok(self.render())
    }

    /// Pre-walks the value for non-finite numbers, tracking a dotted path
    /// (`$.rows[3].phi`) for the error message. Offset is 0: the error
    /// describes the value tree, not a byte position in rendered output.
    fn check_finite(&self, path: &str) -> Result<(), JsonError> {
        match self {
            Json::Num(x) if !x.is_finite() => Err(JsonError {
                message: format!("cannot encode non-finite number {x} at {path}"),
                offset: 0,
            }),
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .try_for_each(|(k, item)| item.check_finite(&format!("{path}[{k}]"))),
            Json::Obj(fields) => fields
                .iter()
                .try_for_each(|(key, value)| value.check_finite(&format!("{path}.{key}"))),
            _ => Ok(()),
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                assert!(x.is_finite(), "cannot encode non-finite number {x}");
                let _ = write!(out, "{x:?}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if items.iter().all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_))) {
                    out.push('[');
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        item.render_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (k, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.render_into(out, indent + 1);
                        out.push_str(if k + 1 < items.len() { ",\n" } else { "\n" });
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if k + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this codec emits, which is all
    /// of JSON except exotic string escapes beyond `\uXXXX`).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing content after document", pos));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError { message: message.to_string(), offset }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err("unexpected character", *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    token.parse::<f64>().map(Json::Num).map_err(|_| err("invalid number", start)).and_then(|v| {
        match v {
            Json::Num(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(err("non-finite number", start)),
        }
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Flattening and diffing
// ---------------------------------------------------------------------------

/// A scalar leaf of a flattened snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// `null`.
    Null,
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Num(x) => write!(f, "{x:?}"),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Str(s) => write!(f, "{s:?}"),
            Leaf::Null => write!(f, "null"),
        }
    }
}

/// Flattens a JSON tree into dotted `path → leaf` pairs, e.g.
/// `equilibrium.subsidies[3] → 0.127`.
pub fn flatten(value: &Json) -> Vec<(String, Leaf)> {
    let mut out = Vec::new();
    flatten_into(value, String::new(), &mut out);
    out
}

fn flatten_into(value: &Json, path: String, out: &mut Vec<(String, Leaf)>) {
    match value {
        Json::Null => out.push((path, Leaf::Null)),
        Json::Bool(b) => out.push((path, Leaf::Bool(*b))),
        Json::Num(x) => out.push((path, Leaf::Num(*x))),
        Json::Str(s) => out.push((path, Leaf::Str(s.clone()))),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_into(item, format!("{path}[{i}]"), out);
            }
            if items.is_empty() {
                out.push((format!("{path}.len"), Leaf::Num(0.0)));
            }
        }
        Json::Obj(fields) => {
            for (key, item) in fields {
                let p = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                flatten_into(item, p, out);
            }
            if fields.is_empty() {
                out.push((format!("{path}.len"), Leaf::Num(0.0)));
            }
        }
    }
}

/// One mismatched field between a golden snapshot and a fresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDiff {
    /// Dotted field path.
    pub field: String,
    /// Value in the committed golden (or "<missing>").
    pub expected: String,
    /// Value in the fresh run (or "<missing>").
    pub actual: String,
    /// Relative error for numeric mismatches (`inf` for type/shape ones).
    pub rel_err: f64,
}

/// Per-field absolute/relative tolerance policy for snapshot comparison.
///
/// | field class | atol | rtol | rationale |
/// |---|---|---|---|
/// | `*.iterations` | 5 | 0.5 | solver effort may drift; order of magnitude is guarded |
/// | `*residual*`, `*kkt*` | 2e-6 | 0 | health indicators: anything certificate-tight passes |
/// | `*.jacobi_gap` | 1e-5 | 0 | cross-solver agreement bound (Theorem 4 tolerance) |
/// | `sim.distance_to_nash` | 1e-9 | 5e-6 | inherits solver float drift through the Nash reference |
/// | other `sim.*` | 1e-9 | 1e-9 | the simulator itself is bit-deterministic per seed |
/// | everything else | 1e-9 | 5e-6 | equilibrium quantities at solver tolerance 1e-9 |
pub fn snapshot_tolerances(path: &str) -> (f64, f64) {
    if path.ends_with(".iterations") {
        (5.0, 0.5)
    } else if path.contains("residual") || path.contains("kkt") {
        (2e-6, 0.0)
    } else if path.ends_with(".jacobi_gap") {
        (1e-5, 0.0)
    } else if (path.starts_with("sim.") || path.contains(".sim."))
        && !path.ends_with(".distance_to_nash")
    {
        (1e-9, 1e-9)
    } else {
        (1e-9, 5e-6)
    }
}

/// Diffs two snapshots field-by-field under a tolerance policy
/// (`path → (atol, rtol)`). Returns the mismatches; empty means equal
/// within tolerance.
pub fn diff_snapshots(
    expected: &Json,
    actual: &Json,
    tolerances: &dyn Fn(&str) -> (f64, f64),
) -> Vec<FieldDiff> {
    let want = flatten(expected);
    let got = flatten(actual);
    let got_map: std::collections::HashMap<&str, &Leaf> =
        got.iter().map(|(p, l)| (p.as_str(), l)).collect();
    let want_keys: std::collections::HashSet<&str> = want.iter().map(|(p, _)| p.as_str()).collect();

    let mut out = Vec::new();
    for (path, exp) in &want {
        match got_map.get(path.as_str()) {
            None => out.push(FieldDiff {
                field: path.clone(),
                expected: exp.to_string(),
                actual: "<missing>".to_string(),
                rel_err: f64::INFINITY,
            }),
            Some(act) => {
                if let Some(d) = leaf_diff(path, exp, act, tolerances) {
                    out.push(d);
                }
            }
        }
    }
    for (path, act) in &got {
        if !want_keys.contains(path.as_str()) {
            out.push(FieldDiff {
                field: path.clone(),
                expected: "<missing>".to_string(),
                actual: act.to_string(),
                rel_err: f64::INFINITY,
            });
        }
    }
    out
}

fn leaf_diff(
    path: &str,
    expected: &Leaf,
    actual: &Leaf,
    tolerances: &dyn Fn(&str) -> (f64, f64),
) -> Option<FieldDiff> {
    let mismatch = |rel_err: f64| FieldDiff {
        field: path.to_string(),
        expected: expected.to_string(),
        actual: actual.to_string(),
        rel_err,
    };
    match (expected, actual) {
        (Leaf::Num(e), Leaf::Num(a)) => {
            let (atol, rtol) = tolerances(path);
            let scale = e.abs().max(a.abs());
            let abs_err = (e - a).abs();
            if abs_err <= atol + rtol * scale {
                None
            } else {
                Some(mismatch(abs_err / scale.max(f64::MIN_POSITIVE)))
            }
        }
        (a, b) if a == b => None,
        _ => Some(mismatch(f64::INFINITY)),
    }
}

/// Renders a readable diff table for one scenario: field, expected,
/// actual, relative error.
pub fn render_diff(scenario: &str, diffs: &[FieldDiff]) -> String {
    let mut table = crate::report::Table::new(&["field", "expected", "actual", "rel-err"]);
    for d in diffs {
        table.row_strings(&[
            d.field.clone(),
            d.expected.clone(),
            d.actual.clone(),
            format!("{:.2e}", d.rel_err),
        ]);
    }
    format!("scenario `{scenario}`: {} field(s) out of tolerance\n{}", diffs.len(), table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut eq = Json::obj();
        eq.set("subsidies", Json::nums(&[0.1, 0.25]));
        eq.set("phi", Json::Num(0.625));
        let mut root = Json::obj();
        root.set("name", Json::Str("demo".into()));
        root.set("converged", Json::Bool(true));
        root.set("equilibrium", eq);
        root.set("sim", Json::Null);
        root
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = sample();
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
        // Deterministic: rendering the parse is byte-identical.
        assert_eq!(text, back.render());
    }

    #[test]
    fn renders_shortest_roundtrip_floats() {
        let text = Json::Num(0.1).render();
        assert_eq!(text, "0.1\n");
        let tiny = Json::Num(6.123233995736766e-17).render();
        assert_eq!(Json::parse(&tiny).unwrap().as_num().unwrap(), 6.123233995736766e-17);
    }

    #[test]
    fn negative_zero_roundtrips_bit_exact() {
        // `-0.0` must survive render → parse with its sign bit: the server
        // cache serializer reuses this codec, and a codec that collapsed
        // `-0.0` to `0.0` would silently alias two distinct snapshots.
        let text = Json::Num(-0.0).render();
        assert_eq!(text, "-0.0\n");
        let back = Json::parse(&text).unwrap().as_num().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // And +0.0 stays +0.0 — the two zeros remain distinguishable.
        let pos = Json::parse(&Json::Num(0.0).render()).unwrap().as_num().unwrap();
        assert_eq!(pos.to_bits(), 0.0f64.to_bits());
        // Nested round-trip through an array keeps both signs.
        let doc = Json::nums(&[-0.0, 0.0]);
        let bits: Vec<u64> = match Json::parse(&doc.render()).unwrap() {
            Json::Arr(items) => items.iter().map(|i| i.as_num().unwrap().to_bits()).collect(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(bits, vec![(-0.0f64).to_bits(), 0.0f64.to_bits()]);
    }

    #[test]
    fn try_render_rejects_non_finite_with_path() {
        let mut eq = Json::obj();
        eq.set("phi", Json::Num(0.5));
        eq.set("subsidies", Json::nums(&[0.1, f64::NAN]));
        let mut root = Json::obj();
        root.set("equilibrium", eq);
        let err = root.try_render().unwrap_err();
        assert!(
            err.message.contains("$.equilibrium.subsidies[1]"),
            "error must name the offending path, got: {}",
            err.message
        );
        let inf = Json::Num(f64::INFINITY).try_render().unwrap_err();
        assert!(inf.message.contains("non-finite"), "got: {}", inf.message);
        // Finite trees render identically to the panicking path.
        let ok = sample();
        assert_eq!(ok.try_render().unwrap(), ok.render());
    }

    #[test]
    #[should_panic(expected = "cannot encode non-finite number")]
    fn render_panics_on_non_finite() {
        // The panicking path stays panicking: snapshot builders validate
        // upstream, and silently emitting `NaN` would be invalid JSON.
        Json::Num(f64::NAN).render();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("1e999").is_err(), "overflow to inf must be rejected");
    }

    #[test]
    fn parse_string_escapes() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "a\"b\\c\ndA");
    }

    #[test]
    fn flatten_paths() {
        let flat = flatten(&sample());
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"equilibrium.subsidies[1]"));
        assert!(paths.contains(&"name"));
        assert!(paths.contains(&"sim"));
    }

    #[test]
    fn diff_is_empty_for_identical_snapshots() {
        let a = sample();
        assert!(diff_snapshots(&a, &a, &snapshot_tolerances).is_empty());
    }

    #[test]
    fn diff_catches_one_shifted_field() {
        let a = sample();
        let mut b = sample();
        if let Json::Obj(fields) = &mut b {
            if let Json::Obj(eq) = &mut fields[2].1 {
                eq[1].1 = Json::Num(0.7); // phi: 0.625 -> 0.7
            }
        }
        let diffs = diff_snapshots(&a, &b, &snapshot_tolerances);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].field, "equilibrium.phi");
        assert!(diffs[0].rel_err > 0.1);
        let rendered = render_diff("demo", &diffs);
        assert!(rendered.contains("equilibrium.phi"));
        assert!(rendered.contains("0.625"));
    }

    #[test]
    fn diff_tolerates_float_noise() {
        let a = sample();
        let mut b = sample();
        if let Json::Obj(fields) = &mut b {
            if let Json::Obj(eq) = &mut fields[2].1 {
                eq[1].1 = Json::Num(0.625 * (1.0 + 1e-9)); // below rtol 5e-6
            }
        }
        assert!(diff_snapshots(&a, &b, &snapshot_tolerances).is_empty());
    }

    #[test]
    fn diff_reports_missing_and_extra() {
        let a = sample();
        let mut b = sample();
        if let Json::Obj(fields) = &mut b {
            fields.retain(|(k, _)| k != "converged");
            fields.push(("stray".into(), Json::Num(1.0)));
        }
        let diffs = diff_snapshots(&a, &b, &snapshot_tolerances);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().any(|d| d.field == "converged" && d.actual == "<missing>"));
        assert!(diffs.iter().any(|d| d.field == "stray" && d.expected == "<missing>"));
    }

    #[test]
    fn tolerance_policy_classes() {
        assert_eq!(snapshot_tolerances("diagnostics.iterations"), (5.0, 0.5));
        assert_eq!(snapshot_tolerances("diagnostics.max_kkt_residual"), (2e-6, 0.0));
        assert_eq!(snapshot_tolerances("sim.final_subsidies[0]"), (1e-9, 1e-9));
        // distance_to_nash compares against the float-drifting Nash
        // reference, so it gets the default class, not the sim one.
        assert_eq!(snapshot_tolerances("sim.distance_to_nash"), (1e-9, 5e-6));
        assert_eq!(snapshot_tolerances("equilibrium.phi"), (1e-9, 5e-6));
    }

    #[test]
    fn empty_containers_keep_a_shape_marker() {
        // An emptied vector or object must not silently equal an absent
        // one — both flatten to an explicit `.len` leaf.
        for empty in [Json::Arr(vec![]), Json::obj()] {
            let flat = flatten(&empty);
            assert_eq!(flat.len(), 1);
            assert!(flat[0].0.ends_with(".len"));
        }
    }
}
