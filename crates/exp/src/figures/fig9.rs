//! Figure 9: equilibrium user populations `m_i(p; q)`, eight CP panels.
//!
//! Paper shape: populations fall with price, steeper for the
//! demand-elastic (`α = 5`) types; a looser cap gives (weakly) larger
//! populations everywhere; high-`v` types retain users better because
//! they subsidize harder.

use super::cpfig::CpFigure;
use super::panel::Panel;
use super::shapes;
use subcomp_num::NumResult;

/// Extracts Figure 9 from the panel.
pub fn compute(panel: &Panel) -> CpFigure {
    CpFigure::from_panel(
        panel,
        "Figure 9 — equilibrium user populations m_i vs price, per policy cap",
        "m",
        |pt, i| pt.m[i],
    )
}

/// The paper's qualitative claims for this figure.
pub fn check_shape(fig: &CpFigure) -> NumResult<Result<(), String>> {
    let nq = fig.qs.len();
    let n = fig.labels.len();
    // (1) Populations fall with price once subsidies stop absorbing the
    //     increase (check from the first price >= 0.2 onward).
    let start = fig.prices.iter().position(|&p| p >= 0.2).unwrap_or(0);
    for qi in 0..nq {
        for i in 0..n {
            let tail = &fig.values[qi][i][start..];
            if !shapes::is_decreasing(tail, 1e-6) {
                return Ok(Err(format!(
                    "population of {} must fall with p at q={}",
                    fig.labels[i], fig.qs[qi]
                )));
            }
        }
    }
    // (2) Looser cap => pointwise (weakly) larger populations.
    for qi in 1..nq {
        for i in 0..n {
            if !shapes::dominates(&fig.values[qi][i], &fig.values[qi - 1][i], 1e-6) {
                return Ok(Err(format!(
                    "population of {} must grow with q (q={} vs q={})",
                    fig.labels[i],
                    fig.qs[qi],
                    fig.qs[qi - 1]
                )));
            }
        }
    }
    // (3) High-v types retain more users than their poor twins once any
    //     subsidizing is allowed (q > 0).
    for qi in 0..nq {
        if fig.qs[qi] == 0.0 {
            continue;
        }
        for k in 0..4 {
            if !shapes::dominates(&fig.values[qi][k + 4], &fig.values[qi][k], 1e-6) {
                return Ok(Err(format!(
                    "v=1 twin of type {k} must retain at least the v=0.5 population at q={}",
                    fig.qs[qi]
                )));
            }
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let p = panel::compute_on(&[0.0, 0.5, 1.5], &[0.2, 0.6, 1.0, 1.5, 2.0], 3).unwrap();
        let fig = compute(&p);
        check_shape(&fig).unwrap().unwrap();
    }

    #[test]
    fn elastic_types_fall_steeper() {
        // Relative decline between p = 0.2 and p = 1.0 is stronger for
        // alpha = 5 than alpha = 2 at q = 0 (pure demand effect).
        let p = panel::compute_on(&[0.0], &[0.2, 1.0], 1).unwrap();
        let fig = compute(&p);
        let drop = |i: usize| fig.values[0][i][1] / fig.values[0][i][0];
        // Same (beta, v): indices 0 (a2-b2-v.5) vs 2 (a5-b2-v.5).
        assert!(drop(2) < drop(0), "alpha=5 must lose users faster");
        // And 4 vs 6 in the v = 1 block.
        assert!(drop(6) < drop(4));
    }

    #[test]
    fn q0_populations_equal_uniform_demand() {
        // Without subsidies populations are just m(p), identical across
        // equal-alpha types.
        let p = panel::compute_on(&[0.0], &[0.5], 1).unwrap();
        let fig = compute(&p);
        assert!((fig.values[0][0][0] - fig.values[0][1][0]).abs() < 1e-12);
        assert!((fig.values[0][4][0] - fig.values[0][0][0]).abs() < 1e-12);
    }
}
