//! Figure 7: ISP revenue `R(p; q)` and system welfare `W(p; q)` at the
//! CPs' subsidization equilibrium (§5 setting).
//!
//! Paper shape: at any fixed price both `R` and `W` increase with the
//! policy cap `q`; `W` decreases with `p` at any fixed `q`; the `q = 2`
//! revenue curve peaks a bit below `p = 1`.

use super::panel::Panel;
use crate::report::{sparkline, write_csv, Table};
use std::path::Path;

/// The data behind Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Policy caps.
    pub qs: Vec<f64>,
    /// Price grid.
    pub prices: Vec<f64>,
    /// `revenue[qi][pi]`.
    pub revenue: Vec<Vec<f64>>,
    /// `welfare[qi][pi]`.
    pub welfare: Vec<Vec<f64>>,
}

/// Extracts the figure from a computed panel.
pub fn compute(panel: &Panel) -> Fig7 {
    let revenue = (0..panel.qs.len()).map(|qi| panel.series(qi, |pt| pt.revenue)).collect();
    let welfare = (0..panel.qs.len()).map(|qi| panel.series(qi, |pt| pt.welfare)).collect();
    Fig7 { qs: panel.qs.clone(), prices: panel.prices.clone(), revenue, welfare }
}

impl Fig7 {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Figure 7 — ISP revenue R and system welfare W vs price, per policy cap q\n\n",
        );
        for (qi, &q) in self.qs.iter().enumerate() {
            out.push_str(&format!("  q = {q:<4}  R: {}\n", sparkline(&self.revenue[qi])));
            out.push_str(&format!("            W: {}\n", sparkline(&self.welfare[qi])));
        }
        out.push('\n');
        let mut header: Vec<String> = vec!["p".into()];
        for &q in &self.qs {
            header.push(format!("R(q={q})"));
        }
        for &q in &self.qs {
            header.push(format!("W(q={q})"));
        }
        let hrefs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&hrefs);
        for (pi, &p) in self.prices.iter().enumerate() {
            let mut row = vec![p];
            for qi in 0..self.qs.len() {
                row.push(self.revenue[qi][pi]);
            }
            for qi in 0..self.qs.len() {
                row.push(self.welfare[qi][pi]);
            }
            t.row(&row);
        }
        out.push_str(&t.render());
        out
    }

    /// Writes the CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut names: Vec<String> = Vec::new();
        for &q in &self.qs {
            names.push(format!("revenue_q{q}"));
        }
        for &q in &self.qs {
            names.push(format!("welfare_q{q}"));
        }
        let mut cols: Vec<(&str, &[f64])> = vec![("p", &self.prices)];
        for (qi, name) in names.iter().take(self.qs.len()).enumerate() {
            cols.push((name.as_str(), &self.revenue[qi]));
        }
        for (qi, name) in names.iter().skip(self.qs.len()).enumerate() {
            cols.push((name.as_str(), &self.welfare[qi]));
        }
        write_csv(path, &cols)
    }

    /// The paper's qualitative claims for this figure.
    pub fn check_shape(&self) -> Result<(), String> {
        use super::shapes;
        let nq = self.qs.len();
        // Monotone in q at fixed p.
        for pi in 0..self.prices.len() {
            for qi in 1..nq {
                if self.revenue[qi][pi] < self.revenue[qi - 1][pi] - 1e-8 {
                    return Err(format!("revenue not monotone in q at p = {}", self.prices[pi]));
                }
                if self.welfare[qi][pi] < self.welfare[qi - 1][pi] - 1e-8 {
                    return Err(format!("welfare not monotone in q at p = {}", self.prices[pi]));
                }
            }
        }
        // Welfare decreases with price at fixed q (skip the p = 0 corner,
        // where subsidized demand can still be rearranging).
        for qi in 0..nq {
            let tail: Vec<f64> = self.welfare[qi]
                .iter()
                .zip(&self.prices)
                .filter(|(_, &p)| p >= 0.1)
                .map(|(w, _)| *w)
                .collect();
            if !shapes::is_decreasing(&tail, 1e-8) {
                return Err(format!("welfare must fall with p at q = {}", self.qs[qi]));
            }
        }
        // Revenue single-peaked per cap with an interior peak.
        for qi in 0..nq {
            if !shapes::is_single_peaked(&self.revenue[qi], 1e-8) {
                return Err(format!("revenue not single-peaked at q = {}", self.qs[qi]));
            }
            if !shapes::has_interior_peak(&self.revenue[qi]) {
                return Err(format!("revenue peak not interior at q = {}", self.qs[qi]));
            }
        }
        Ok(())
    }

    /// Location of the revenue peak for cap index `qi`.
    pub fn revenue_peak(&self, qi: usize) -> (f64, f64) {
        let k = super::shapes::argmax(&self.revenue[qi]);
        (self.prices[k], self.revenue[qi][k])
    }
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    fn test_panel() -> Panel {
        panel::compute_on(
            &[0.0, 0.5, 2.0],
            &(0..=10).map(|k| k as f64 * 0.2).collect::<Vec<_>>(),
            3,
        )
        .unwrap()
    }

    #[test]
    fn shape_matches_paper() {
        let fig = compute(&test_panel());
        fig.check_shape().unwrap();
    }

    #[test]
    fn q2_peak_a_bit_below_one() {
        // The paper: with q = 2 the revenue peak sits a bit below p = 1.
        let fig = compute(&test_panel());
        let (p_star, _) = fig.revenue_peak(2);
        assert!((0.4..=1.0).contains(&p_star), "peak at {p_star}");
    }

    #[test]
    fn render_and_csv() {
        let fig = compute(&test_panel());
        let s = fig.render();
        assert!(s.contains("Figure 7"));
        assert!(s.contains("W(q=2)"));
        let dir = std::env::temp_dir().join("subcomp_fig7_test");
        fig.write_csv(&dir.join("fig7.csv")).unwrap();
        let head = std::fs::read_to_string(dir.join("fig7.csv")).unwrap();
        assert!(head.lines().next().unwrap().contains("revenue_q0.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
