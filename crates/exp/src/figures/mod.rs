//! Figure-by-figure data generators.
//!
//! Each submodule computes the data behind one paper figure, renders the
//! ASCII report the binary prints, and writes the CSV. The `shapes`
//! module holds the qualitative-shape predicates shared between the
//! generators' self-checks and the integration tests — so "the test
//! passed" and "the printed figure matches the paper" are the same fact.

pub mod cpfig;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod panel;
pub mod shapes;
pub mod snapshots;
