//! Figure 5: per-CP throughput `θ_i(p)` under one-sided pricing — the
//! 3×3 grid of `(α, β)` types from §3.2.
//!
//! Paper shape: every `θ_i` eventually decreases in `p`; CPs with a small
//! `α_i/β_i` ratio (price-insensitive users, congestion-sensitive
//! traffic) show an *initial rise* — condition (7)/(8) at work — while
//! large `α_i, β_i` types sit low and fall monotonically.

use crate::report::{sparkline, write_csv, Table};
use crate::scenarios::{section3_specs, section3_system, spec_label};
use crate::sweep::{one_sided_sweep, Axis};
use std::path::Path;
use subcomp_num::NumResult;

/// The data behind Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Price grid.
    pub prices: Vec<f64>,
    /// Per-CP throughput: `theta[i][k]` is CP `i` at price `prices[k]`.
    pub theta: Vec<Vec<f64>>,
    /// CP labels in spec order (`a1-b1`, `a1-b3`, …).
    pub labels: Vec<String>,
}

/// Computes the figure on a price grid — routed through the axis-generic
/// continuation module's one-sided sweep (see [`crate::figures::fig4`];
/// values bit-identical to the historical `OneSidedMarket` evaluation,
/// pinned by the `figure-fig5` golden snapshot).
pub fn compute(prices: &[f64]) -> NumResult<Fig5> {
    let system = section3_system();
    let sweep = one_sided_sweep(&system, 0.0, Axis::Price, prices)?;
    let n = system.n();
    let mut theta = vec![Vec::with_capacity(prices.len()); n];
    for pt in &sweep {
        for i in 0..n {
            theta[i].push(pt.state.theta_i[i]);
        }
    }
    Ok(Fig5 {
        prices: prices.to_vec(),
        theta,
        labels: section3_specs().iter().map(spec_label).collect(),
    })
}

impl Fig5 {
    /// Renders the printed report (one row per CP panel).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Figure 5 — per-CP throughput vs price, 3x3 grid of (alpha, beta) types\n\n");
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!("  {label:>10}: {}\n", sparkline(&self.theta[i])));
        }
        out.push('\n');
        let mut header: Vec<&str> = vec!["p"];
        for l in &self.labels {
            header.push(l.as_str());
        }
        let mut t = Table::new(&header);
        for (k, &p) in self.prices.iter().enumerate() {
            let mut row = vec![p];
            for i in 0..self.labels.len() {
                row.push(self.theta[i][k]);
            }
            t.row(&row);
        }
        out.push_str(&t.render());
        out
    }

    /// Writes the CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut cols: Vec<(&str, &[f64])> = vec![("p", &self.prices)];
        for (i, l) in self.labels.iter().enumerate() {
            cols.push((l.as_str(), &self.theta[i]));
        }
        write_csv(path, &cols)
    }

    /// The paper's qualitative claims for this figure.
    pub fn check_shape(&self) -> Result<(), String> {
        use super::shapes;
        let specs = section3_specs();
        for (i, th) in self.theta.iter().enumerate() {
            // Everybody falls eventually: the tail from the peak is
            // decreasing, and the last value is below the first.
            if !shapes::is_single_peaked(th, 1e-9) {
                return Err(format!("theta_{i} must be single-peaked/decreasing"));
            }
            // "Each theta_i decreases with p eventually" (paper, after
            // condition (8)): the tail after the peak falls. Note the
            // *level* can stay above theta_i(0) on a finite grid — for
            // alpha = 1 types the decongestion benefit dominates for a
            // long stretch — so we assert the direction, not the level.
            let peak = shapes::argmax(th);
            if peak + 2 < th.len() && th[th.len() - 1] >= th[peak] {
                return Err(format!("theta_{i} must decrease after its peak"));
            }
            let ratio = specs[i].alpha / specs[i].beta;
            if ratio <= 0.21 {
                // alpha/beta in {1/5}: the paper shows an initial rise.
                if !shapes::rises_initially(th, 0.0) {
                    return Err(format!("theta_{i} (alpha/beta = {ratio}) should rise at small p"));
                }
            }
            if ratio >= 3.0 {
                // alpha/beta in {3, 5}: monotone decreasing from the start.
                if !shapes::is_decreasing(th, 1e-9) {
                    return Err(format!(
                        "theta_{i} (alpha/beta = {ratio}) should be monotone decreasing"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig4::default_prices;

    #[test]
    fn shape_matches_paper() {
        let fig = compute(&default_prices(26)).unwrap();
        fig.check_shape().unwrap();
    }

    #[test]
    fn nine_panels() {
        let fig = compute(&default_prices(6)).unwrap();
        assert_eq!(fig.theta.len(), 9);
        assert_eq!(fig.labels.len(), 9);
        assert_eq!(fig.labels[0], "a1-b1-v1");
        assert!(fig.theta.iter().all(|t| t.len() == 6));
    }

    #[test]
    fn low_alpha_high_beta_rises() {
        // The (1, 5) type: most congestion-sensitive, least
        // price-sensitive: rises when price relieves congestion.
        let fig = compute(&default_prices(26)).unwrap();
        let i = fig.labels.iter().position(|l| l == "a1-b5-v1").unwrap();
        assert!(fig.theta[i][1] > fig.theta[i][0]);
    }

    #[test]
    fn render_and_csv() {
        let fig = compute(&default_prices(5)).unwrap();
        assert!(fig.render().contains("a5-b5"));
        let dir = std::env::temp_dir().join("subcomp_fig5_test");
        fig.write_csv(&dir.join("fig5.csv")).unwrap();
        let content = std::fs::read_to_string(dir.join("fig5.csv")).unwrap();
        assert!(content.lines().next().unwrap().split(',').count() == 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
