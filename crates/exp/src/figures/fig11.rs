//! Figure 11: equilibrium utilities `U_i(p; q) = (v_i − s_i) θ_i`, eight
//! CP panels.
//!
//! Paper shape: each `U_i` tracks `θ_i` scaled by the margin `v_i − s_i`.
//! As `q` grows, the demand-elastic high-value types (`α = 5, v = 1`)
//! gain utility through subsidization, while the inelastic,
//! congestion-sensitive `(α = 2, β = 5)` types lose; the rest are
//! roughly unchanged.

use super::cpfig::CpFigure;
use super::panel::Panel;
use subcomp_num::NumResult;

/// Extracts Figure 11 from the panel.
pub fn compute(panel: &Panel) -> CpFigure {
    CpFigure::from_panel(
        panel,
        "Figure 11 — equilibrium utilities U_i vs price, per policy cap",
        "U",
        |pt, i| pt.utilities[i],
    )
}

/// The paper's qualitative claims for this figure. `q_base` is the
/// `q = 0` baseline index, `q_loose` a deregulated index to compare.
pub fn check_shape(fig: &CpFigure, q_base: usize, q_loose: usize) -> NumResult<Result<(), String>> {
    let np = fig.prices.len();
    // Compare average utility across the price grid, baseline vs loose.
    let avg = |qi: usize, i: usize| -> f64 { fig.values[qi][i].iter().sum::<f64>() / np as f64 };
    // (1) The (alpha=5, v=1) types — indices 6 and 7 — gain.
    for i in [6usize, 7] {
        if avg(q_loose, i) < avg(q_base, i) - 1e-9 {
            return Ok(Err(format!(
                "type {} ({}) should gain utility under deregulation",
                i, fig.labels[i]
            )));
        }
    }
    // (2) The (alpha=2, beta=5) types — indices 1 and 5 — lose.
    for i in [1usize, 5] {
        if avg(q_loose, i) > avg(q_base, i) + 1e-9 {
            return Ok(Err(format!(
                "type {} ({}) should lose utility under deregulation",
                i, fig.labels[i]
            )));
        }
    }
    // (3) Utilities are non-negative (a CP can always bid s = 0; the
    //     equilibrium margin v - s stays non-negative).
    for qi in 0..fig.qs.len() {
        for i in 0..fig.labels.len() {
            for pi in 0..np {
                if fig.values[qi][i][pi] < -1e-9 {
                    return Ok(Err(format!(
                        "negative utility for {} at q={}, p={}",
                        fig.labels[i], fig.qs[qi], fig.prices[pi]
                    )));
                }
            }
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let p = panel::compute_on(&[0.0, 1.0], &[0.2, 0.5, 0.9, 1.4], 2).unwrap();
        let fig = compute(&p);
        check_shape(&fig, 0, 1).unwrap().unwrap();
    }

    #[test]
    fn utility_is_margin_times_throughput() {
        let p = panel::compute_on(&[0.5], &[0.6], 1).unwrap();
        let u_fig = compute(&p);
        let pt = p.point(0, 0);
        for i in 0..8 {
            let v = if i < 4 { 0.5 } else { 1.0 };
            let expect = (v - pt.subsidies[i]) * pt.theta[i];
            assert!((u_fig.values[0][i][0] - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn baseline_utility_equals_v_theta() {
        let p = panel::compute_on(&[0.0], &[0.7], 1).unwrap();
        let u_fig = compute(&p);
        let t_fig = super::super::fig10::compute(&p);
        for i in 0..8 {
            let v = if i < 4 { 0.5 } else { 1.0 };
            assert!((u_fig.values[0][i][0] - v * t_fig.values[0][i][0]).abs() < 1e-10);
        }
    }
}
