//! Figure 8: equilibrium subsidies `s_i(p; q)`, eight CP panels.
//!
//! Paper shape: higher-profitability (`v = 1`) and higher-demand-
//! elasticity (`α = 5`) types subsidize more than their counterparts; at
//! small `p` most CPs are pinned at the cap (except the `α = 2, v = 0.5`
//! types); as `p` grows subsidies flatten and eventually decline with the
//! shrinking profit margin.

use super::cpfig::CpFigure;
use super::panel::Panel;
use crate::scenarios::section5_specs;
use subcomp_num::NumResult;

/// Extracts Figure 8 from the panel.
pub fn compute(panel: &Panel) -> CpFigure {
    CpFigure::from_panel(
        panel,
        "Figure 8 — equilibrium subsidies s_i vs price, per policy cap",
        "s",
        |pt, i| pt.subsidies[i],
    )
}

/// The paper's qualitative claims for this figure.
pub fn check_shape(fig: &CpFigure) -> NumResult<Result<(), String>> {
    let specs = section5_specs();
    let nq = fig.qs.len();
    // (1) v = 1 types subsidize at least as much as their v = 0.5 twins.
    for qi in 0..nq {
        for k in 0..4 {
            for pi in 0..fig.prices.len() {
                let poor = fig.values[qi][k][pi];
                let rich = fig.values[qi][k + 4][pi];
                if rich < poor - 1e-6 {
                    return Ok(Err(format!(
                        "v=1 type {k} subsidizes less than v=0.5 twin at q={}, p={}",
                        fig.qs[qi], fig.prices[pi]
                    )));
                }
            }
        }
    }
    // (2) alpha = 5 types subsidize at least as much as alpha = 2 twins
    //     (same beta, same v). Spec order within a v-block: (2,2), (2,5),
    //     (5,2), (5,5).
    for qi in 0..nq {
        for blk in [0usize, 4] {
            for b in 0..2 {
                for pi in 0..fig.prices.len() {
                    let lo_alpha = fig.values[qi][blk + b][pi];
                    let hi_alpha = fig.values[qi][blk + 2 + b][pi];
                    if hi_alpha < lo_alpha - 1e-6 {
                        return Ok(Err(format!(
                            "alpha=5 type subsidizes less than alpha=2 twin at q={}, p={}",
                            fig.qs[qi], fig.prices[pi]
                        )));
                    }
                }
            }
        }
    }
    // (3) At a small positive price and a modest cap, the aggressive types
    //     are pinned at the cap while the (alpha=2, v=0.5) types are not.
    if let Some(qi) = fig.qs.iter().position(|&q| (q - 0.5).abs() < 1e-9) {
        if let Some(pi) = fig.prices.iter().position(|&p| p >= 0.15) {
            for i in [6usize, 7] {
                // a5-*-v1
                if fig.values[qi][i][pi] < fig.qs[qi] - 1e-6 {
                    return Ok(Err(format!(
                        "aggressive type {i} not at cap at small p (s = {})",
                        fig.values[qi][i][pi]
                    )));
                }
            }
            let _ = specs;
        }
    }
    // (4) Subsidies are feasible everywhere.
    for qi in 0..nq {
        for i in 0..fig.labels.len() {
            for pi in 0..fig.prices.len() {
                let s = fig.values[qi][i][pi];
                if !(s >= -1e-12 && s <= fig.qs[qi] + 1e-9) {
                    return Ok(Err(format!("infeasible subsidy {s} at q={}", fig.qs[qi])));
                }
            }
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let p = panel::compute_on(&[0.0, 0.5, 1.0], &[0.2, 0.5, 0.9, 1.4, 2.0], 3).unwrap();
        let fig = compute(&p);
        check_shape(&fig).unwrap().unwrap();
    }

    #[test]
    fn zero_cap_means_zero_subsidy() {
        let p = panel::compute_on(&[0.0], &[0.5, 1.0], 1).unwrap();
        let fig = compute(&p);
        assert!(fig.values[0].iter().all(|cp| cp.iter().all(|&s| s == 0.0)));
    }

    #[test]
    fn poor_inelastic_types_never_subsidize_much() {
        // The paper: the (alpha=2, v=0.5) types are the holdouts.
        let p = panel::compute_on(&[1.0], &[0.3, 0.7, 1.2], 1).unwrap();
        let fig = compute(&p);
        for pi in 0..3 {
            assert!(fig.values[0][0][pi] < 0.2, "a2-b2-v0.5 subsidy too high");
            assert!(fig.values[0][1][pi] < 0.2, "a2-b5-v0.5 subsidy too high");
        }
    }
}
