//! The shared §5 equilibrium sweep behind Figures 7–11.
//!
//! All five figures plot quantities of the *same* family of equilibria:
//! the 8-type market solved over `p ∈ [0, 2]` for each policy cap
//! `q ∈ {0, 0.5, 1, 1.5, 2}`. This module computes that grid once through
//! the [`GridSolver`] continuation engine — price-axis warm starts plus
//! cap-row seeding, zero per-point allocation, parallel across column
//! blocks — and the per-figure modules extract their series from the
//! resulting [`EqGrid`] through borrowed [`EqPointView`]s.

use crate::scenarios::section5_system;
use crate::scenarios::{paper_policy_grid, paper_price_grid, section5_specs, spec_label};
use crate::sweep::{EqGrid, EqPointView, GridSolver};
use subcomp_num::{NumError, NumResult};

/// The full Figures 7–11 grid.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Policy caps (outer axis).
    pub qs: Vec<f64>,
    /// Price grid (inner axis).
    pub prices: Vec<f64>,
    /// CP labels in spec order.
    pub labels: Vec<String>,
    /// The solved equilibrium grid (rows = caps, columns = prices).
    pub grid: EqGrid,
}

/// Computes the paper's panel: `q ∈ {0, …, 2}`, `p ∈ [0, 2]` with
/// `points` samples, parallel across price blocks.
pub fn compute(points: usize, threads: usize) -> NumResult<Panel> {
    compute_on(&paper_policy_grid(), &paper_price_grid(points), threads)
}

/// Computes the panel on explicit grids.
pub fn compute_on(qs: &[f64], prices: &[f64], threads: usize) -> NumResult<Panel> {
    let system = section5_system();
    let solver = GridSolver::default().with_threads(threads);
    let grid = solver.solve(&system, qs, prices)?;
    Ok(Panel {
        qs: qs.to_vec(),
        prices: prices.to_vec(),
        labels: section5_specs().iter().map(spec_label).collect(),
        grid,
    })
}

impl Panel {
    /// Number of CP types.
    pub fn n_cps(&self) -> usize {
        self.labels.len()
    }

    /// The equilibrium at cap index `qi`, price index `pi`.
    pub fn point(&self, qi: usize, pi: usize) -> EqPointView<'_> {
        self.grid.point(qi, pi)
    }

    /// Extracts the series of a scalar quantity vs price at cap index
    /// `qi` — e.g. `|pt| pt.revenue`.
    pub fn series(&self, qi: usize, f: impl Fn(&EqPointView<'_>) -> f64) -> Vec<f64> {
        (0..self.prices.len()).map(|pi| f(&self.point(qi, pi))).collect()
    }

    /// Extracts a per-CP quantity vs price at cap index `qi` for CP `i`.
    pub fn cp_series(
        &self,
        qi: usize,
        i: usize,
        f: impl Fn(&EqPointView<'_>, usize) -> f64,
    ) -> Vec<f64> {
        (0..self.prices.len()).map(|pi| f(&self.point(qi, pi), i)).collect()
    }

    /// Index of a cap value in the grid.
    pub fn q_index(&self, q: f64) -> NumResult<usize> {
        self.qs
            .iter()
            .position(|&x| (x - q).abs() < 1e-12)
            .ok_or(NumError::Domain { what: "cap not in panel grid", value: q })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small panel reused by the figure tests (computing the full
    /// 41-point panel in every unit test would be wasteful).
    pub(crate) fn small_panel() -> Panel {
        compute_on(&[0.0, 1.0], &[0.2, 0.6, 1.0, 1.6], 2).unwrap()
    }

    #[test]
    fn grid_dimensions() {
        let p = small_panel();
        assert_eq!(p.grid.n_rows(), 2);
        assert_eq!(p.grid.n_cols(), 4);
        assert_eq!(p.n_cps(), 8);
        assert_eq!(p.q_index(1.0).unwrap(), 1);
        assert!(p.q_index(0.7).is_err());
    }

    #[test]
    fn baseline_q0_has_zero_subsidies() {
        let p = small_panel();
        for pi in 0..p.prices.len() {
            assert!(p.point(0, pi).subsidies.iter().all(|&s| s == 0.0));
        }
    }

    #[test]
    fn revenue_and_welfare_rise_with_q_at_fixed_price() {
        // Figure 7's headline: at any fixed p, larger q gives larger R
        // and W.
        let p = small_panel();
        for pi in 0..p.prices.len() {
            assert!(
                p.point(1, pi).revenue >= p.point(0, pi).revenue - 1e-9,
                "revenue at p = {}",
                p.prices[pi]
            );
            assert!(
                p.point(1, pi).welfare >= p.point(0, pi).welfare - 1e-9,
                "welfare at p = {}",
                p.prices[pi]
            );
        }
    }

    #[test]
    fn series_extraction() {
        let p = small_panel();
        let rev = p.series(1, |pt| pt.revenue);
        assert_eq!(rev.len(), 4);
        let s6 = p.cp_series(1, 6, |pt, i| pt.subsidies[i]);
        assert!(s6.iter().any(|&s| s > 0.0), "the a5-b2-v1 type must subsidize somewhere");
    }

    #[test]
    fn panel_matches_independent_solves() {
        // The continuation-computed panel must agree with fresh cold
        // solves of the same games (the pre-GridSolver construction).
        use subcomp_core::game::SubsidyGame;
        use subcomp_core::nash::NashSolver;
        let p = small_panel();
        let system = crate::scenarios::section5_system();
        let solver = NashSolver::default().with_tol(1e-8);
        for (qi, &q) in p.qs.iter().enumerate() {
            for (pi, &price) in p.prices.iter().enumerate() {
                let game = SubsidyGame::new(system.clone(), price, q).unwrap();
                let eq = solver.solve(&game).unwrap();
                let pt = p.point(qi, pi);
                for i in 0..8 {
                    assert!(
                        (pt.subsidies[i] - eq.subsidies[i]).abs() < 1e-6,
                        "(q={q}, p={price}) CP {i}"
                    );
                }
                assert!((pt.revenue - eq.isp_revenue(&game)).abs() < 1e-6);
                assert!((pt.welfare - eq.welfare(&game)).abs() < 1e-6);
            }
        }
    }
}
