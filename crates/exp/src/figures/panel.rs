//! The shared §5 equilibrium sweep behind Figures 7–11.
//!
//! All five figures plot quantities of the *same* family of equilibria:
//! the 8-type market solved over `p ∈ [0, 2]` for each policy cap
//! `q ∈ {0, 0.5, 1, 1.5, 2}`. This module computes that grid once
//! (parallel across caps, warm-started along prices) and the per-figure
//! modules extract their series from it.

use crate::scenarios::{
    paper_policy_grid, paper_price_grid, section5_specs, section5_system, spec_label,
};
use crate::sweep::{equilibrium_price_sweep, parallel_map};
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::welfare::welfare;
use subcomp_num::{NumError, NumResult};

/// One equilibrium point of the panel grid.
#[derive(Debug, Clone)]
pub struct EqPoint {
    /// Policy cap.
    pub q: f64,
    /// ISP price.
    pub p: f64,
    /// Equilibrium subsidies per CP.
    pub subsidies: Vec<f64>,
    /// Equilibrium populations per CP.
    pub m: Vec<f64>,
    /// Equilibrium throughput per CP.
    pub theta: Vec<f64>,
    /// Equilibrium utilities per CP.
    pub utilities: Vec<f64>,
    /// System utilization.
    pub phi: f64,
    /// ISP revenue.
    pub revenue: f64,
    /// System welfare `W = Σ v_i θ_i`.
    pub welfare: f64,
}

/// The full Figures 7–11 grid.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Policy caps (outer axis).
    pub qs: Vec<f64>,
    /// Price grid (inner axis).
    pub prices: Vec<f64>,
    /// CP labels in spec order.
    pub labels: Vec<String>,
    /// `grid[qi][pi]` is the equilibrium at `(qs[qi], prices[pi])`.
    pub grid: Vec<Vec<EqPoint>>,
}

/// Computes the paper's panel: `q ∈ {0, …, 2}`, `p ∈ [0, 2]` with
/// `points` samples, parallel across caps.
pub fn compute(points: usize, threads: usize) -> NumResult<Panel> {
    compute_on(&paper_policy_grid(), &paper_price_grid(points), threads)
}

/// Computes the panel on explicit grids.
pub fn compute_on(qs: &[f64], prices: &[f64], threads: usize) -> NumResult<Panel> {
    let system = section5_system();
    let solver = NashSolver::default().with_tol(1e-8);
    let results: Vec<NumResult<Vec<EqPoint>>> = parallel_map(qs, threads, |&q| {
        let sweep = equilibrium_price_sweep(&system, q, prices, &solver)?;
        let game0 = SubsidyGame::new(system.clone(), 0.0, q)?;
        let mut points = Vec::with_capacity(sweep.len());
        for pt in sweep {
            let game = game0.with_price(pt.p)?;
            let eq = pt.equilibrium;
            points.push(EqPoint {
                q,
                p: pt.p,
                phi: eq.state.phi,
                revenue: eq.isp_revenue(&game),
                welfare: welfare(&game, &eq.state),
                m: eq.state.m.clone(),
                theta: eq.state.theta_i.clone(),
                utilities: eq.utilities.clone(),
                subsidies: eq.subsidies,
            });
        }
        Ok(points)
    });
    let mut grid = Vec::with_capacity(qs.len());
    for r in results {
        grid.push(r?);
    }
    Ok(Panel {
        qs: qs.to_vec(),
        prices: prices.to_vec(),
        labels: section5_specs().iter().map(spec_label).collect(),
        grid,
    })
}

impl Panel {
    /// Number of CP types.
    pub fn n_cps(&self) -> usize {
        self.labels.len()
    }

    /// Extracts the series of a scalar quantity vs price at cap index
    /// `qi` — e.g. `|pt| pt.revenue`.
    pub fn series(&self, qi: usize, f: impl Fn(&EqPoint) -> f64) -> Vec<f64> {
        self.grid[qi].iter().map(f).collect()
    }

    /// Extracts a per-CP quantity vs price at cap index `qi` for CP `i`.
    pub fn cp_series(&self, qi: usize, i: usize, f: impl Fn(&EqPoint, usize) -> f64) -> Vec<f64> {
        self.grid[qi].iter().map(|pt| f(pt, i)).collect()
    }

    /// Index of a cap value in the grid.
    pub fn q_index(&self, q: f64) -> NumResult<usize> {
        self.qs
            .iter()
            .position(|&x| (x - q).abs() < 1e-12)
            .ok_or(NumError::Domain { what: "cap not in panel grid", value: q })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small panel reused by the figure tests (computing the full
    /// 41-point panel in every unit test would be wasteful).
    pub(crate) fn small_panel() -> Panel {
        compute_on(&[0.0, 1.0], &[0.2, 0.6, 1.0, 1.6], 2).unwrap()
    }

    #[test]
    fn grid_dimensions() {
        let p = small_panel();
        assert_eq!(p.grid.len(), 2);
        assert_eq!(p.grid[0].len(), 4);
        assert_eq!(p.n_cps(), 8);
        assert_eq!(p.q_index(1.0).unwrap(), 1);
        assert!(p.q_index(0.7).is_err());
    }

    #[test]
    fn baseline_q0_has_zero_subsidies() {
        let p = small_panel();
        for pt in &p.grid[0] {
            assert!(pt.subsidies.iter().all(|&s| s == 0.0));
        }
    }

    #[test]
    fn revenue_and_welfare_rise_with_q_at_fixed_price() {
        // Figure 7's headline: at any fixed p, larger q gives larger R
        // and W.
        let p = small_panel();
        for pi in 0..p.prices.len() {
            assert!(
                p.grid[1][pi].revenue >= p.grid[0][pi].revenue - 1e-9,
                "revenue at p = {}",
                p.prices[pi]
            );
            assert!(
                p.grid[1][pi].welfare >= p.grid[0][pi].welfare - 1e-9,
                "welfare at p = {}",
                p.prices[pi]
            );
        }
    }

    #[test]
    fn series_extraction() {
        let p = small_panel();
        let rev = p.series(1, |pt| pt.revenue);
        assert_eq!(rev.len(), 4);
        let s6 = p.cp_series(1, 6, |pt, i| pt.subsidies[i]);
        assert!(s6.iter().any(|&s| s > 0.0), "the a5-b2-v1 type must subsidize somewhere");
    }
}
