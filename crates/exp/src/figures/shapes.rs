//! Qualitative-shape predicates for figure validation.
//!
//! The paper's claims about its figures are qualitative ("θ decreases with
//! p", "R is single-peaked", "high-v CPs subsidize more"); these helpers
//! make those claims executable.

/// Strictly decreasing within tolerance (each step must drop by more than
/// `-tol`).
pub fn is_decreasing(xs: &[f64], tol: f64) -> bool {
    xs.windows(2).all(|w| w[1] < w[0] + tol)
}

/// Non-decreasing within tolerance.
pub fn is_nondecreasing(xs: &[f64], tol: f64) -> bool {
    xs.windows(2).all(|w| w[1] >= w[0] - tol)
}

/// Single-peaked: rises (weakly) to an interior or boundary peak, then
/// falls (weakly); `tol` forgives solver noise.
pub fn is_single_peaked(xs: &[f64], tol: f64) -> bool {
    if xs.len() < 3 {
        return true;
    }
    let peak = argmax(xs);
    xs[..=peak].windows(2).all(|w| w[1] >= w[0] - tol)
        && xs[peak..].windows(2).all(|w| w[1] <= w[0] + tol)
}

/// Peak is strictly interior (not at either end of the grid).
pub fn has_interior_peak(xs: &[f64]) -> bool {
    let peak = argmax(xs);
    peak > 0 && peak + 1 < xs.len()
}

/// Index of the maximum (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Pointwise dominance: `a_i >= b_i - tol` for all `i`.
pub fn dominates(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x >= &(y - tol))
}

/// Initial rise: the series increases somewhere before its maximum,
/// starting from index 0 (used for Figure 5's low-α/β CPs).
pub fn rises_initially(xs: &[f64], tol: f64) -> bool {
    xs.len() >= 2 && xs[1] > xs[0] + tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing() {
        assert!(is_decreasing(&[3.0, 2.0, 1.0], 1e-12));
        assert!(!is_decreasing(&[3.0, 2.0, 2.5], 1e-12));
        assert!(is_decreasing(&[3.0, 3.0], 1e-6)); // within tolerance
        assert!(is_decreasing(&[], 0.0));
    }

    #[test]
    fn nondecreasing() {
        assert!(is_nondecreasing(&[1.0, 1.0, 2.0], 0.0));
        assert!(!is_nondecreasing(&[1.0, 0.5], 1e-9));
    }

    #[test]
    fn single_peak() {
        assert!(is_single_peaked(&[1.0, 3.0, 2.0], 1e-12));
        assert!(is_single_peaked(&[3.0, 2.0, 1.0], 1e-12)); // peak at boundary
        assert!(is_single_peaked(&[1.0, 2.0, 3.0], 1e-12));
        assert!(!is_single_peaked(&[1.0, 3.0, 1.0, 3.0, 1.0], 1e-12));
    }

    #[test]
    fn interior_peak() {
        assert!(has_interior_peak(&[1.0, 3.0, 2.0]));
        assert!(!has_interior_peak(&[3.0, 2.0, 1.0]));
        assert!(!has_interior_peak(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }

    #[test]
    fn dominance() {
        assert!(dominates(&[2.0, 3.0], &[1.0, 3.0], 1e-9));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 3.0], 1e-9));
        assert!(!dominates(&[2.0], &[1.0, 1.0], 1e-9));
    }

    #[test]
    fn initial_rise() {
        assert!(rises_initially(&[1.0, 1.5, 0.5], 1e-9));
        assert!(!rises_initially(&[1.0, 0.9], 1e-9));
    }
}
