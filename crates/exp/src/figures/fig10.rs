//! Figure 10: equilibrium throughput `θ_i(p; q)`, eight CP panels.
//!
//! Paper shape: high-profitability (`v = 1`) and congestion-tolerant
//! (`β = 2`) types achieve the higher throughput; against the `q = 0`
//! baseline the high-`v` types gain — with the documented exception of
//! the `(α, β, v) = (2, 5, 1)` type at small prices, which loses to the
//! congestion externality despite its own subsidy.

use super::cpfig::CpFigure;
use super::panel::Panel;
use subcomp_num::NumResult;

/// Extracts Figure 10 from the panel.
pub fn compute(panel: &Panel) -> CpFigure {
    CpFigure::from_panel(
        panel,
        "Figure 10 — equilibrium throughput theta_i vs price, per policy cap",
        "theta",
        |pt, i| pt.theta[i],
    )
}

/// The paper's qualitative claims for this figure. `q_base` must be the
/// index of the `q = 0` baseline.
pub fn check_shape(fig: &CpFigure, q_base: usize) -> NumResult<Result<(), String>> {
    let nq = fig.qs.len();
    let np = fig.prices.len();
    // (1) Within each (alpha, v) pair, the beta = 2 type out-carries the
    //     beta = 5 type: indices (0 vs 1), (2 vs 3), (4 vs 5), (6 vs 7).
    for qi in 0..nq {
        for pair in [(0usize, 1usize), (2, 3), (4, 5), (6, 7)] {
            for pi in 0..np {
                if fig.values[qi][pair.0][pi] < fig.values[qi][pair.1][pi] - 1e-9 {
                    return Ok(Err(format!(
                        "beta=2 type {} must out-carry beta=5 type {} (q={}, p={})",
                        pair.0, pair.1, fig.qs[qi], fig.prices[pi]
                    )));
                }
            }
        }
    }
    // (2) The demand-elastic high-v types (alpha = 5, v = 1; indices 6
    //     and 7) gain vs the q = 0 baseline at every *positive* price —
    //     they are the unambiguous winners of deregulation. The exact
    //     p = 0 corner is excluded: with free access there is no fee to
    //     subsidize, and the unclamped model's negative effective prices
    //     only pile on congestion there.
    for qi in 0..nq {
        if qi == q_base {
            continue;
        }
        for i in [6usize, 7] {
            for pi in 0..np {
                if fig.prices[pi] <= 0.0 {
                    continue;
                }
                if fig.values[qi][i][pi] < fig.values[q_base][i][pi] - 1e-6 {
                    return Ok(Err(format!(
                        "high-v elastic type {i} must gain vs baseline at q={}, p={}",
                        fig.qs[qi], fig.prices[pi]
                    )));
                }
            }
        }
        // (3) The inelastic high-v types (alpha = 2) gain once the price
        //     is high enough that congestion is mild (p >= 1.2 on the
        //     paper grid). At small p the (2,5,1) type loses — the
        //     paper's documented exception — and our reproduction finds
        //     the (2,2,1) type dips slightly below baseline there too
        //     (recorded as a deviation in EXPERIMENTS.md).
        for i in [4usize, 5] {
            for pi in 0..np {
                if fig.prices[pi] < 1.2 {
                    continue;
                }
                if fig.values[qi][i][pi] < fig.values[q_base][i][pi] - 1e-6 {
                    return Ok(Err(format!(
                        "inelastic high-v type {i} must gain vs baseline at q={}, p={}",
                        fig.qs[qi], fig.prices[pi]
                    )));
                }
            }
        }
    }
    Ok(Ok(()))
}

/// The paper's documented exception: the `(2, 5, 1)` type (index 5) loses
/// throughput vs baseline at small prices under deregulation. Returns the
/// set of grid prices at which it happens for cap index `qi`.
pub fn exception_prices(fig: &CpFigure, q_base: usize, qi: usize) -> Vec<f64> {
    fig.prices
        .iter()
        .enumerate()
        .filter(|(pi, _)| fig.values[qi][5][*pi] < fig.values[q_base][5][*pi] - 1e-9)
        .map(|(_, &p)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let p = panel::compute_on(&[0.0, 0.5, 1.0], &[0.1, 0.4, 0.8, 1.3, 1.9], 3).unwrap();
        let fig = compute(&p);
        check_shape(&fig, 0).unwrap().unwrap();
    }

    #[test]
    fn congestion_sensitive_rich_type_loses_at_small_p() {
        // The paper's explicit exception for (alpha, beta, v) = (2, 5, 1).
        let p = panel::compute_on(&[0.0, 1.0], &[0.05, 0.1, 0.2, 0.8], 2).unwrap();
        let fig = compute(&p);
        let losses = exception_prices(&fig, 0, 1);
        assert!(
            losses.iter().any(|&p| p <= 0.2),
            "(2,5,1) should lose somewhere at small p; losses at {losses:?}"
        );
    }

    #[test]
    fn labels_identify_types() {
        let p = panel::compute_on(&[0.0], &[0.5], 1).unwrap();
        let fig = compute(&p);
        assert_eq!(fig.labels[5], "a2-b5-v1");
        assert_eq!(fig.labels[4], "a2-b2-v1");
    }
}
