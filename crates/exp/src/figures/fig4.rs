//! Figure 4: aggregate throughput `θ(p)` and ISP revenue `R(p)` under
//! one-sided pricing (§3.2 setting: 9 CP types, `(α, β) ∈ {1,3,5}²`,
//! `µ = 1`).
//!
//! Paper shape: θ strictly decreasing in `p` (Theorem 2); `R = pθ`
//! single-peaked with an interior maximum.

use crate::report::{sparkline, write_csv, Table};
use crate::scenarios::section3_system;
use crate::sweep::{one_sided_sweep, Axis};
use std::path::Path;
use subcomp_num::NumResult;

/// The data behind Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Price grid.
    pub prices: Vec<f64>,
    /// Aggregate throughput per price.
    pub theta: Vec<f64>,
    /// ISP revenue per price.
    pub revenue: Vec<f64>,
    /// Utilization per price (not plotted in the paper; kept for E3).
    pub phi: Vec<f64>,
}

/// Default price grid for Figures 4–5: `p ∈ [0, 2.5]` inclusive.
pub fn default_prices(points: usize) -> Vec<f64> {
    let n = points.max(2);
    (0..n).map(|k| 2.5 * k as f64 / (n - 1) as f64).collect()
}

/// Computes the figure on a price grid — routed through the axis-generic
/// continuation module's one-sided sweep
/// ([`crate::sweep::one_sided_sweep`] on [`Axis::Price`]): one reused
/// scratch/state buffer across the whole grid, values bit-identical to the
/// historical per-point `OneSidedMarket` evaluation and pinned by the
/// `figure-fig4` golden snapshot.
pub fn compute(prices: &[f64]) -> NumResult<Fig4> {
    let system = section3_system();
    let sweep = one_sided_sweep(&system, 0.0, Axis::Price, prices)?;
    Ok(Fig4 {
        prices: prices.to_vec(),
        theta: sweep.iter().map(|pt| pt.state.theta()).collect(),
        revenue: sweep.iter().map(|pt| pt.revenue).collect(),
        phi: sweep.iter().map(|pt| pt.state.phi).collect(),
    })
}

impl Fig4 {
    /// Renders the printed report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Figure 4 — aggregate throughput and ISP revenue vs price (Sec. 3.2 setting)\n",
        );
        out.push_str(&format!("  theta(p):   {}\n", sparkline(&self.theta)));
        out.push_str(&format!("  revenue(p): {}\n\n", sparkline(&self.revenue)));
        let mut t = Table::new(&["p", "theta", "revenue", "phi"]);
        for i in 0..self.prices.len() {
            t.row(&[self.prices[i], self.theta[i], self.revenue[i], self.phi[i]]);
        }
        out.push_str(&t.render());
        out
    }

    /// Writes the CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        write_csv(
            path,
            &[
                ("p", &self.prices),
                ("theta", &self.theta),
                ("revenue", &self.revenue),
                ("phi", &self.phi),
            ],
        )
    }

    /// The paper's qualitative claims for this figure.
    pub fn check_shape(&self) -> Result<(), String> {
        use super::shapes;
        if !shapes::is_decreasing(&self.theta, 1e-9) {
            return Err("theta(p) must be strictly decreasing (Theorem 2)".into());
        }
        if !shapes::is_single_peaked(&self.revenue, 1e-9) {
            return Err("revenue(p) must be single-peaked".into());
        }
        if !shapes::has_interior_peak(&self.revenue) {
            return Err("revenue peak must be interior".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = compute(&default_prices(26)).unwrap();
        fig.check_shape().unwrap();
    }

    #[test]
    fn render_contains_series() {
        let fig = compute(&default_prices(6)).unwrap();
        let s = fig.render();
        assert!(s.contains("Figure 4"));
        assert!(s.contains("revenue"));
        assert!(s.lines().count() > 8);
    }

    #[test]
    fn csv_written() {
        let fig = compute(&default_prices(5)).unwrap();
        let dir = std::env::temp_dir().join("subcomp_fig4_test");
        let path = dir.join("fig4.csv");
        fig.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("p,theta,revenue,phi"));
        assert_eq!(content.lines().count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throughput_at_zero_price_is_peak() {
        let fig = compute(&default_prices(26)).unwrap();
        assert_eq!(super::super::shapes::argmax(&fig.theta), 0);
        assert_eq!(fig.revenue[0], 0.0);
    }
}
