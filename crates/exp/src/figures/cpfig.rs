//! Shared machinery for the per-CP panel figures (Figures 8–11).
//!
//! Figures 8, 9, 10 and 11 are the same plot with a different quantity on
//! the y-axis: eight CP panels, one curve per policy cap, price on the
//! x-axis. [`CpFigure`] extracts such a figure from the shared
//! [`Panel`] and owns the rendering/CSV plumbing; the
//! per-figure modules add only their quantity extractor and the paper's
//! shape checks.

use super::panel::Panel;
use crate::report::{sparkline, write_csv, Table};
use crate::sweep::EqPointView;
use std::path::Path;

/// A per-CP, per-cap, per-price figure.
#[derive(Debug, Clone)]
pub struct CpFigure {
    /// Figure title for rendering.
    pub title: String,
    /// Short name of the plotted quantity (CSV column prefix).
    pub quantity: String,
    /// Policy caps.
    pub qs: Vec<f64>,
    /// Price grid.
    pub prices: Vec<f64>,
    /// CP labels.
    pub labels: Vec<String>,
    /// `values[qi][cp][pi]`.
    pub values: Vec<Vec<Vec<f64>>>,
}

impl CpFigure {
    /// Extracts a figure from the panel with a per-point quantity.
    pub fn from_panel(
        panel: &Panel,
        title: impl Into<String>,
        quantity: impl Into<String>,
        f: impl Fn(&EqPointView<'_>, usize) -> f64,
    ) -> CpFigure {
        let n = panel.n_cps();
        let values = (0..panel.qs.len())
            .map(|qi| (0..n).map(|i| panel.cp_series(qi, i, &f)).collect())
            .collect();
        CpFigure {
            title: title.into(),
            quantity: quantity.into(),
            qs: panel.qs.clone(),
            prices: panel.prices.clone(),
            labels: panel.labels.clone(),
            values,
        }
    }

    /// The series for `(cap index, cp index)`.
    pub fn series(&self, qi: usize, cp: usize) -> &[f64] {
        &self.values[qi][cp]
    }

    /// Renders sparkline panels plus the full table at the largest cap.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push_str("\n\n");
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!("  {label:>10}:"));
            for (qi, &q) in self.qs.iter().enumerate() {
                out.push_str(&format!("  q={q}: {}", sparkline(&self.values[qi][i])));
            }
            out.push('\n');
        }
        let qi_last = self.qs.len() - 1;
        out.push_str(&format!("\n  full table at q = {} (CSV has all caps):\n", self.qs[qi_last]));
        let mut header: Vec<&str> = vec!["p"];
        for l in &self.labels {
            header.push(l.as_str());
        }
        let mut t = Table::new(&header);
        for (pi, &p) in self.prices.iter().enumerate() {
            let mut row = vec![p];
            for i in 0..self.labels.len() {
                row.push(self.values[qi_last][i][pi]);
            }
            t.row(&row);
        }
        out.push_str(&t.render());
        out
    }

    /// Writes the CSV: one column per `(cp, q)` pair.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut names: Vec<String> = Vec::new();
        for label in &self.labels {
            for &q in &self.qs {
                names.push(format!("{}_{}_q{}", self.quantity, label, q));
            }
        }
        let mut cols: Vec<(&str, &[f64])> = vec![("p", &self.prices)];
        let mut k = 0;
        for (i, _) in self.labels.iter().enumerate() {
            for (qi, _) in self.qs.iter().enumerate() {
                cols.push((names[k].as_str(), &self.values[qi][i]));
                k += 1;
            }
        }
        write_csv(path, &cols)
    }
}

#[cfg(test)]
mod tests {
    use super::super::panel;
    use super::*;

    fn tiny() -> CpFigure {
        let p = panel::compute_on(&[0.0, 1.0], &[0.3, 0.9], 2).unwrap();
        CpFigure::from_panel(&p, "Test figure", "theta", |pt, i| pt.theta[i])
    }

    #[test]
    fn extraction_dimensions() {
        let f = tiny();
        assert_eq!(f.values.len(), 2);
        assert_eq!(f.values[0].len(), 8);
        assert_eq!(f.values[0][0].len(), 2);
        assert_eq!(f.series(1, 3).len(), 2);
    }

    #[test]
    fn render_contains_panels() {
        let f = tiny();
        let s = f.render();
        assert!(s.contains("Test figure"));
        assert!(s.contains("a5-b5-v1"));
        assert!(s.contains("full table at q = 1"));
    }

    #[test]
    fn csv_column_layout() {
        let f = tiny();
        let dir = std::env::temp_dir().join("subcomp_cpfig_test");
        f.write_csv(&dir.join("x.csv")).unwrap();
        let content = std::fs::read_to_string(dir.join("x.csv")).unwrap();
        let header = content.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 1 + 8 * 2);
        assert!(header.contains("theta_a2-b2-v0.5_q0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
