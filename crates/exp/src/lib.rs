//! # `subcomp-exp` — experiment harness
//!
//! Regenerates every data figure in the evaluation of Ma, *Subsidization
//! Competition* (CoNEXT 2014), plus the three extension experiments in
//! DESIGN.md. Each paper figure has a dedicated binary printing the same
//! series the paper plots and writing a CSV under `results/`:
//!
//! | binary | paper artifact | content |
//! |---|---|---|
//! | `fig4` | Figure 4 | aggregate throughput θ(p) and revenue R(p), §3.2 setting |
//! | `fig5` | Figure 5 | per-CP throughput θ_i(p), 3×3 grid of (α, β) types |
//! | `fig7` | Figure 7 | ISP revenue and welfare vs p for q ∈ {0, …, 2} |
//! | `fig8` | Figure 8 | equilibrium subsidies s_i(p; q), 8 panels |
//! | `fig9` | Figure 9 | equilibrium populations m_i(p; q) |
//! | `fig10` | Figure 10 | equilibrium throughput θ_i(p; q) |
//! | `fig11` | Figure 11 | equilibrium utilities U_i(p; q) |
//! | `extensions` | — | E1 endogenous pricing, E2 capacity planning, E3 sim-vs-theory |
//! | `all_figures` | — | everything above in one run |
//!
//! The [`figures`] module computes the data (shared with the integration
//! tests, which assert the paper's qualitative claims on exactly the data
//! the binaries print); [`scenarios`] pins the paper's parameterizations;
//! [`report`] renders aligned ASCII tables and CSV files; [`sweep`] runs
//! multi-threaded parameter sweeps with warm-started equilibrium solves —
//! including the [`sweep::GridSolver`] 2-D continuation engine the §5
//! panel and the grid benchmarks are built on.
//!
//! Beyond the figures, [`corpus`] maintains the named scenario corpus —
//! the paper's systems plus oligopolies, capacity/elasticity extremes and
//! non-neutral regimes — and [`golden`] pins every corpus run to a
//! committed JSON snapshot under `tests/golden/` (regenerate with the
//! `regen_golden` binary; see `tests/README.md` for the tolerance policy).
//!
//! The [`server`] module turns the batch engines into a resident service:
//! a long-running in-process equilibrium server over warm workspaces with
//! a fingerprint cache and a deterministic load generator (the
//! `serve_market` binary drives it end to end). The [`adoption`] module
//! closes the Weber–Guérin feedback loop on top of it: million-user
//! `sim::adoption` cohorts drive in-place axis/demand writes and warm
//! re-solves through the sharded server (the `adopt_sim` binary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adoption;
pub mod corpus;
pub mod extensions;
pub mod figures;
pub mod golden;
pub mod report;
pub mod scenarios;
pub mod server;
pub mod sweep;
