//! Extension experiments E1–E3 (DESIGN.md §4).
//!
//! * **E1 — endogenous pricing**: re-optimize the monopoly price at each
//!   cap and measure what deregulation does to price, revenue and welfare
//!   when the ISP is *not* price-regulated (the §5 regulatory caveat).
//! * **E2 — capacity planning**: the §6 future-work extension; how the
//!   profit-maximizing capacity `µ*(q)` moves with deregulation.
//! * **E3 — sim-vs-theory**: validate the analytic fixed point and Nash
//!   equilibrium against the flow-level and agent-based simulators.
//! * **E4 — ISP duopoly**: the §6 conjecture that access competition
//!   disciplines prices while subsidization keeps helping both ISPs.
//! * **E5 — continuum market**: a continuum of CP types (Lemma 2 taken
//!   to the limit) and the convergence of discrete type-panels to it.

use crate::report::Table;
use crate::scenarios::section5_system;
use subcomp_core::capacity::CapacityPlanner;
use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::NashSolver;
use subcomp_core::policy::{policy_sweep, PolicyPoint, PriceResponse};
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_model::system::System;
use subcomp_num::NumResult;
use subcomp_sim::flow::{FlowSim, FlowSimConfig};
use subcomp_sim::market::{MarketSim, MarketSimConfig};

/// E1 result: fixed-price vs endogenous-price policy sweeps side by side.
#[derive(Debug, Clone)]
pub struct EndogenousPricing {
    /// Sweep with the price frozen at the `q = 0` monopoly optimum.
    pub fixed: Vec<PolicyPoint>,
    /// Sweep with the price re-optimized at each cap.
    pub endogenous: Vec<PolicyPoint>,
}

/// Runs E1 on the paper's §5 market.
pub fn endogenous_pricing(qs: &[f64], solver: &NashSolver) -> NumResult<EndogenousPricing> {
    let system = section5_system();
    // Freeze at the q = 0 optimum: the "ISP cannot react" benchmark.
    let p0 = subcomp_core::pricing::optimal_price(&system, 0.0, 0.0, 2.0, solver)?.p_star;
    let fixed = policy_sweep(&system, qs, PriceResponse::Fixed(p0), solver)?;
    let endogenous =
        policy_sweep(&system, qs, PriceResponse::Optimal { lo: 0.0, hi: 2.0 }, solver)?;
    Ok(EndogenousPricing { fixed, endogenous })
}

impl EndogenousPricing {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("E1 — deregulation with fixed vs re-optimized monopoly price\n\n");
        let mut t =
            Table::new(&["q", "p(fixed)", "R(fixed)", "W(fixed)", "p*(q)", "R*", "W at p*"]);
        for (f, e) in self.fixed.iter().zip(&self.endogenous) {
            t.row(&[f.q, f.p, f.revenue, f.welfare, e.p, e.revenue, e.welfare]);
        }
        out.push_str(&t.render());
        out
    }
}

/// E2 result: capacity planning across caps.
#[derive(Debug, Clone)]
pub struct CapacityStudy {
    /// Rows `(q, µ*, p*, long-run profit, utilization at the optimum)`.
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
}

/// A reduced 4-type market keeps E2 affordable (nested tri-level
/// optimization: capacity → price → equilibrium).
pub fn capacity_study_system() -> System {
    build_system(
        &[
            ExpCpSpec::unit(2.0, 2.0, 0.5),
            ExpCpSpec::unit(5.0, 2.0, 1.0),
            ExpCpSpec::unit(2.0, 5.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
        ],
        1.0,
    )
    .expect("static specs are valid")
}

/// Runs E2.
pub fn capacity_study(qs: &[f64], unit_cost: f64, solver: &NashSolver) -> NumResult<CapacityStudy> {
    let system = capacity_study_system();
    let planner = CapacityPlanner::new(unit_cost, (0.0, 2.0), (0.4, 4.0))?;
    let mut rows = Vec::with_capacity(qs.len());
    for &q in qs {
        let c = planner.optimal_capacity(&system, q, solver)?;
        rows.push((q, c.mu_star, c.p_star, c.profit, c.equilibrium_phi));
    }
    Ok(CapacityStudy { rows })
}

impl CapacityStudy {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("E2 — ISP capacity planning (max_mu R(p*(mu), mu) - c*mu)\n\n");
        let mut t = Table::new(&["q", "mu*", "p*", "profit", "phi"]);
        for &(q, mu, p, profit, phi) in &self.rows {
            t.row(&[q, mu, p, profit, phi]);
        }
        out.push_str(&t.render());
        out
    }
}

/// E3 result: simulator cross-validation.
#[derive(Debug, Clone)]
pub struct SimVsTheory {
    /// Flow-sim rows `(price, phi_sim, phi_analytic, rel_err)`.
    pub flow_rows: Vec<(f64, f64, f64, f64)>,
    /// Market-sim distance to the analytic Nash equilibrium.
    pub market_distance: f64,
    /// Final market subsidies and the Nash reference.
    pub market_final: Vec<f64>,
    /// Nash subsidies.
    pub market_nash: Vec<f64>,
}

/// Runs E3 on a 3-type market (kept small so the binary finishes in
/// seconds).
pub fn sim_vs_theory(seed: u64) -> NumResult<SimVsTheory> {
    let system = build_system(
        &[
            ExpCpSpec::unit(2.0, 2.0, 1.0),
            ExpCpSpec::unit(5.0, 5.0, 0.5),
            ExpCpSpec::unit(3.0, 1.0, 1.0),
        ],
        1.0,
    )?;
    let mut flow_rows = Vec::new();
    for &p in &[0.2, 0.5, 1.0] {
        let cfg = FlowSimConfig { seed, ..Default::default() };
        let rep = FlowSim::new(&system, vec![p; 3], cfg)?.run()?;
        flow_rows.push((p, rep.phi_mean, rep.analytic_phi, rep.phi_rel_error));
    }
    let game_system =
        build_system(&[ExpCpSpec::unit(5.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.4)], 1.0)?;
    let game = SubsidyGame::new(game_system, 0.7, 1.0)?;
    let market = MarketSim::new(&game, MarketSimConfig { seed, ..Default::default() })?.run()?;
    Ok(SimVsTheory {
        flow_rows,
        market_distance: market.distance_to_nash,
        market_final: market.final_subsidies,
        market_nash: market.nash_subsidies,
    })
}

impl SimVsTheory {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("E3 — simulators vs analytic model\n\n");
        out.push_str("flow-level sim (adaptive users) vs Definition 1 fixed point:\n");
        let mut t = Table::new(&["p", "phi(sim)", "phi(model)", "rel err"]);
        for &(p, s, a, e) in &self.flow_rows {
            t.row(&[p, s, a, e]);
        }
        out.push_str(&t.render());
        out.push_str("\nagent-based market vs Nash equilibrium:\n");
        let mut t2 = Table::new(&["cp", "market", "nash"]);
        for i in 0..self.market_final.len() {
            t2.row(&[i as f64, self.market_final[i], self.market_nash[i]]);
        }
        out.push_str(&t2.render());
        out.push_str(&format!("\nsup-distance to Nash: {:.4}\n", self.market_distance));
        out
    }
}

/// E4 result: duopoly vs monopoly access market.
#[derive(Debug, Clone)]
pub struct DuopolyStudy {
    /// Duopoly equilibrium prices.
    pub p_duo: (f64, f64),
    /// Duopoly revenues `(A, B)`.
    pub revenue_duo: (f64, f64),
    /// Duopoly welfare.
    pub welfare_duo: f64,
    /// Monopoly benchmark `(p*, revenue, welfare)` at the same total
    /// capacity and cap.
    pub monopoly: (f64, f64, f64),
    /// Subsidization lift under competition: revenues `(banned, open)`
    /// summed over both ISPs at symmetric fixed prices.
    pub subsidy_lift: (f64, f64),
}

/// Runs E4 on a compact two-CP market.
pub fn duopoly_study(cap: f64) -> NumResult<DuopolyStudy> {
    use subcomp_core::duopoly::{monopoly_benchmark, Duopoly};
    let sys = build_system(&[ExpCpSpec::unit(4.0, 2.0, 1.0), ExpCpSpec::unit(2.0, 4.0, 0.5)], 1.0)?;
    let duo = Duopoly::new(&sys, 0.5, 0.5, 6.0, cap)?;
    let (p_a, p_b, st) = duo.price_competition((0.05, 1.5), 6)?;
    let monopoly = monopoly_benchmark(&sys, 1.0, cap, (0.05, 1.5))?;
    let banned = Duopoly::new(&sys, 0.5, 0.5, 6.0, 0.0)?.subsidy_equilibrium(0.5, 0.5)?;
    let open = Duopoly::new(&sys, 0.5, 0.5, 6.0, cap.max(0.6))?.subsidy_equilibrium(0.5, 0.5)?;
    Ok(DuopolyStudy {
        p_duo: (p_a, p_b),
        revenue_duo: (st.revenue_a, st.revenue_b),
        welfare_duo: st.welfare,
        monopoly,
        subsidy_lift: (banned.revenue_a + banned.revenue_b, open.revenue_a + open.revenue_b),
    })
}

impl DuopolyStudy {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("E4 — access-ISP duopoly vs monopoly (paper Sec. 6 conjecture)\n\n");
        out.push_str(&format!(
            "  duopoly prices   ({:.3}, {:.3})   monopoly price {:.3}\n",
            self.p_duo.0, self.p_duo.1, self.monopoly.0
        ));
        out.push_str(&format!(
            "  duopoly revenue  ({:.4}, {:.4})  monopoly revenue {:.4}\n",
            self.revenue_duo.0, self.revenue_duo.1, self.monopoly.1
        ));
        out.push_str(&format!(
            "  duopoly welfare  {:.4}            monopoly welfare {:.4}\n",
            self.welfare_duo, self.monopoly.2
        ));
        out.push_str(&format!(
            "  subsidization lift under competition: revenue {:.4} -> {:.4}\n",
            self.subsidy_lift.0, self.subsidy_lift.1
        ));
        out
    }
}

/// E5 result: continuum market and discretization convergence.
#[derive(Debug, Clone)]
pub struct ContinuumStudy {
    /// Exact continuum utilization at the probe price.
    pub phi_exact: f64,
    /// `(panel size, |phi_n - phi_exact|)` rows.
    pub convergence: Vec<(usize, f64)>,
    /// Probe price used.
    pub price: f64,
}

/// Runs E5: types spread over `α ∈ [1, 5]` with `β` moving oppositely.
pub fn continuum_study(price: f64) -> NumResult<ContinuumStudy> {
    use subcomp_model::continuum::ContinuumMarket;
    let market = ContinuumMarket::new(
        1.0,
        (0.0, 1.0),
        |_| 1.0,
        |w| 1.0 + 4.0 * w,
        |w| 5.0 - 4.0 * w,
        |w| 0.5 + 0.5 * w,
    )?;
    let phi_exact = market.utilization(price)?;
    let mut convergence = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let specs = market.discretize(n)?;
        let sys = build_system(&specs, 1.0)?;
        let phi = sys.state_at_uniform_price(price)?.phi;
        convergence.push((n, (phi - phi_exact).abs()));
    }
    Ok(ContinuumStudy { phi_exact, convergence, price })
}

impl ContinuumStudy {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("E5 — continuum of CP types; discrete panels converge (Lemma 2 limit)\n\n");
        out.push_str(&format!(
            "  continuum fixed point at p = {}: phi = {:.8}\n",
            self.price, self.phi_exact
        ));
        let mut t = Table::new(&["panel size", "abs error"]).with_precision(8);
        for &(n, e) in &self.convergence {
            t.row(&[n as f64, e]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> NashSolver {
        NashSolver::default().with_tol(1e-6).with_max_sweeps(100)
    }

    #[test]
    fn e4_duopoly_story() {
        let study = duopoly_study(0.5).unwrap();
        let (pa, pb) = study.p_duo;
        assert!(pa < study.monopoly.0 && pb < study.monopoly.0, "competition must undercut");
        assert!(study.welfare_duo > study.monopoly.2, "competition must raise welfare");
        assert!(study.subsidy_lift.1 > study.subsidy_lift.0, "subsidies must lift revenue");
        assert!(study.render().contains("E4"));
    }

    #[test]
    fn e5_panels_converge() {
        let study = continuum_study(0.5).unwrap();
        let errs: Vec<f64> = study.convergence.iter().map(|&(_, e)| e).collect();
        assert!(errs.windows(2).all(|w| w[1] <= w[0] + 1e-12), "errors must shrink: {errs:?}");
        assert!(*errs.last().unwrap() < 1e-5);
        assert!(study.render().contains("E5"));
    }

    #[test]
    fn e1_endogenous_beats_fixed_revenue() {
        let e1 = endogenous_pricing(&[0.0, 1.0], &solver()).unwrap();
        // Re-optimizing can only help the ISP.
        for (f, e) in e1.fixed.iter().zip(&e1.endogenous) {
            assert!(e.revenue >= f.revenue - 1e-6, "q = {}", f.q);
        }
        assert!(e1.render().contains("E1"));
    }

    #[test]
    fn e2_runs_and_reports() {
        let study = capacity_study(&[0.0, 0.5], 0.08, &solver()).unwrap();
        assert_eq!(study.rows.len(), 2);
        // Deregulation must not shrink long-run profit.
        assert!(study.rows[1].3 >= study.rows[0].3 - 1e-6);
        assert!(study.render().contains("mu*"));
    }

    #[test]
    fn e3_simulators_agree_with_theory() {
        let r = sim_vs_theory(7).unwrap();
        for &(p, _, _, err) in &r.flow_rows {
            assert!(err < 0.05, "flow sim off at p = {p}: rel err {err}");
        }
        assert!(r.market_distance < 0.1, "market sim distance {}", r.market_distance);
        assert!(r.render().contains("sup-distance"));
    }
}
