//! The closed adoption loop: simulate → in-place axis/demand writes →
//! warm re-solve → simulate, wired through the sharded server.
//!
//! `sim::adoption` supplies the demand side — a million-user
//! structure-of-arrays population adopting and churning under
//! externality-dependent hazards. This module closes the feedback loop
//! the ROADMAP's Weber–Guérin item asks for, with the
//! [`ShardedServer`] as the equilibrium host (**one resident market per
//! adoption cohort**):
//!
//! 1. **Externality read.** Each tick reads the cohort's current
//!    equilibrium — lock-free out of the router's published
//!    [`SnapshotIndex`] entry when the parameterization is unchanged,
//!    through the shard otherwise — and turns it into the tick's
//!    [`TickDrive`]: effective price `t_eff_i = max(p − s_i, 0)` and
//!    externality gain `gain_i = 1 + γ·θ_i` (adoption begets adoption:
//!    higher served throughput raises every valuation).
//! 2. **Simulate.** The population steps one tick —
//!    [`step_population`] fans the owned blocks over
//!    [`crate::sweep::parallel_map_mut`], bit-identical for any thread
//!    count — and re-aggregates per-type adopted mass in one pass.
//! 3. **Feed back.** Adoption load depresses effective capacity,
//!    `µ = µ_base / (1 + η·load)`, written through the server as an
//!    in-place `Request::Update { axis: Axis::Mu }`; with
//!    [`LoopConfig::seed_tangent`] a `Request::Sensitivity` first arms
//!    the server's tangent seed so the re-solve rides the
//!    predictor-corrector. Every [`LoopConfig::demand_every`] ticks the
//!    realized masses are written back into the demand curves
//!    (`m⁰_i ← max(mass_i, floor·m⁰_i)`) together with an
//!    adoption-coupled `Axis::Profitability` drift, as a full `submit`.
//! 4. **Re-solve.** A `Request::Equilibrium` re-solves the market —
//!    tangent-seeded or warm from the previous equilibrium, both
//!    allocation-free in the resident server — and publishes the
//!    snapshot the *next* tick's externality read picks up lock-free.
//!
//! Cohorts never interact: each cohort's population seed, capacity base
//! and market id are pure functions of `(loop seed, market id)`, so a
//! cohort's trajectory is bit-identical whatever other cohorts run
//! beside it (and whatever the shard or thread counts are) — the
//! cohort-isolation leg of the determinism tier in
//! `tests/adoption_tier.rs`.
//!
//! [`SnapshotIndex`]: subcomp_core::snapshot::SnapshotIndex

use crate::server::sharded::{ShardedConfig, ShardedServer};
use crate::server::{Reply, Request, ServeError, ServeResult, Source};
use crate::sweep::parallel_map_mut;
use subcomp_core::game::{Axis, SubsidyGame};
use subcomp_model::aggregation::{build_system, ExpCpSpec};
use subcomp_num::{NumError, NumResult};
use subcomp_sim::adoption::{AdoptionParams, Population, TickDrive, TypeSpec};
use subcomp_sim::rng::SimRng;

/// Stream index deriving per-cohort population seeds from the loop seed.
const POP_STREAM: u64 = 0xC040_0001;

/// Steps `pop` by one tick with the block fan-out parallelized over
/// `threads` OS threads. Blocks are owned, disjoint chunks and the
/// per-user update is a pure counter function, so the result is
/// **bit-identical to the serial [`Population::step`] for any thread
/// count** (pinned by the adoption determinism tier). `threads <= 1`
/// runs serially with no spawn.
pub fn step_population(pop: &mut Population, threads: usize, drive: &TickDrive) -> NumResult<()> {
    let ctx = pop.prepare_tick(drive)?;
    parallel_map_mut(pop.blocks_mut(), threads, || (), |_, block| block.step(&ctx, drive));
    pop.refresh_masses();
    Ok(())
}

/// How each equilibrium answer of the closed loop was produced —
/// cumulative tallies over every served request, the observable that
/// separates the warm loop from the cooled one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// Router-absorbed lock-free snapshot reads.
    pub lockfree: u64,
    /// Fingerprint-cache hits inside a resident server.
    pub cache: u64,
    /// Tangent-seeded predictor-corrector solves.
    pub tangent: u64,
    /// Warm re-solves from the previous equilibrium.
    pub warm: u64,
    /// Cold solves from scratch.
    pub cold: u64,
    /// Budget-starved partial answers.
    pub partial: u64,
}

impl SourceCounts {
    /// Tallies one served source.
    pub fn note(&mut self, source: Source) {
        match source {
            Source::LockFree => self.lockfree += 1,
            Source::CacheHit => self.cache += 1,
            Source::Tangent => self.tangent += 1,
            Source::Warm => self.warm += 1,
            Source::Cold => self.cold += 1,
            Source::Partial => self.partial += 1,
        }
    }

    /// Total answers tallied.
    pub fn total(&self) -> u64 {
        self.lockfree + self.cache + self.tangent + self.warm + self.cold + self.partial
    }
}

/// Configuration of the closed loop.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Master seed; cohort populations and capacity bases derive from it.
    pub seed: u64,
    /// Number of adoption cohorts (= resident markets).
    pub cohorts: usize,
    /// Users per cohort.
    pub users: usize,
    /// Users per SoA block (the unit of parallel distribution).
    pub chunk: usize,
    /// Worker threads for the block fan-out (`<= 1` is serial).
    pub threads: usize,
    /// Adoption/churn hazards; the `seed` field is overridden per cohort.
    pub hazards: AdoptionParams,
    /// Externality strength `γ` in `gain_i = 1 + γ·θ_i`.
    pub gamma: f64,
    /// Capacity load sensitivity `η` in `µ = µ_base / (1 + η·load)`.
    pub eta: f64,
    /// Write realized masses back into the demand curves (full `submit`
    /// plus a profitability drift) every this many ticks; 0 disables.
    pub demand_every: u64,
    /// Floor on the demand write-back, as a fraction of the original
    /// `m⁰` (keeps the rebuilt system well-posed when adoption crashes).
    pub demand_floor: f64,
    /// Arm the server's tangent seed (`Request::Sensitivity`) before
    /// each µ write so re-solves ride the predictor-corrector.
    pub seed_tangent: bool,
    /// Worker shards of the sharded server.
    pub shards: usize,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            seed: 0,
            cohorts: 1,
            users: 100_000,
            chunk: 16_384,
            threads: 1,
            hazards: AdoptionParams { adopt: 0.5, churn: 0.5, ..Default::default() },
            gamma: 0.5,
            eta: 0.3,
            demand_every: 0,
            demand_floor: 0.25,
            seed_tangent: true,
            shards: 1,
        }
    }
}

/// Aggregate outcome of one tick across all cohorts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSummary {
    /// Tick index (1-based).
    pub tick: u64,
    /// Total adopted users across cohorts.
    pub adopted: u64,
    /// Total adopted mass across cohorts.
    pub mass: f64,
}

/// Deterministic outcome of a [`AdoptionLoop::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Ticks run.
    pub ticks: u64,
    /// Cohort count.
    pub cohorts: usize,
    /// Users per cohort.
    pub users: usize,
    /// Adopted users after the last tick.
    pub final_adopted: u64,
    /// Adopted mass after the last tick.
    pub final_mass: f64,
    /// Cumulative equilibrium-answer sources.
    pub sources: SourceCounts,
    /// FNV-1a fold of every tick's `(tick, adopted, mass)` — byte-equal
    /// across reruns, thread counts and chunk sizes.
    pub checksum: u64,
}

/// One cohort: a resident market plus its user population.
struct Cohort {
    market: u64,
    pop: Population,
    drive: TickDrive,
    mu_base: f64,
}

/// The closed simulate → write → warm-resolve loop over a
/// [`ShardedServer`]. See the module docs for the tick anatomy.
pub struct AdoptionLoop {
    cfg: LoopConfig,
    specs: Vec<ExpCpSpec>,
    price: f64,
    cap: f64,
    server: ShardedServer,
    cohorts: Vec<Cohort>,
    scratch_specs: Vec<ExpCpSpec>,
    tick: u64,
    sources: SourceCounts,
}

/// Top 53 bits of an avalanched hash as a uniform in `[0, 1)`.
#[inline]
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over one 64-bit word.
#[inline]
fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for byte in word.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl AdoptionLoop {
    /// Builds the loop: one resident market per cohort (CP demand
    /// curves from `specs`, usage price `price`, subsidy cap `cap`,
    /// per-cohort capacity jittered around `mu` as a pure function of
    /// the market id) and one user population per cohort seeded by
    /// `stream_seed(cfg.seed, market)`.
    pub fn new(
        specs: &[ExpCpSpec],
        mu: f64,
        price: f64,
        cap: f64,
        cfg: &LoopConfig,
    ) -> NumResult<AdoptionLoop> {
        if cfg.cohorts == 0 {
            return Err(NumError::Domain {
                what: "adoption loop needs at least one cohort",
                value: 0.0,
            });
        }
        if !(cfg.gamma >= 0.0) || !cfg.gamma.is_finite() {
            return Err(NumError::Domain {
                what: "externality strength gamma must be non-negative and finite",
                value: cfg.gamma,
            });
        }
        if !(cfg.eta >= 0.0) || !cfg.eta.is_finite() {
            return Err(NumError::Domain {
                what: "load sensitivity eta must be non-negative and finite",
                value: cfg.eta,
            });
        }
        if !(cfg.demand_floor > 0.0 && cfg.demand_floor <= 1.0) {
            return Err(NumError::Domain {
                what: "demand floor must be a fraction in (0, 1]",
                value: cfg.demand_floor,
            });
        }
        let types: Vec<TypeSpec> =
            specs.iter().map(|s| TypeSpec { mass: s.m0, alpha: s.alpha }).collect();
        let pop_root = SimRng::stream_seed(cfg.seed, POP_STREAM);
        let mut markets = Vec::with_capacity(cfg.cohorts);
        let mut cohorts = Vec::with_capacity(cfg.cohorts);
        for market in 0..cfg.cohorts as u64 {
            // Cohort capacity: ±10% around the base, pure in the id —
            // cohorts keep their µ whatever the cohort count.
            let mu_base = mu * (0.9 + 0.2 * u01(SimRng::stream_seed(cfg.seed, !market)));
            let game = SubsidyGame::new(build_system(specs, mu_base)?, price, cap)?;
            markets.push((market, game));
            let hazards =
                AdoptionParams { seed: SimRng::stream_seed(pop_root, market), ..cfg.hazards };
            cohorts.push(Cohort {
                market,
                pop: Population::build(&types, cfg.users, cfg.chunk, hazards)?,
                drive: TickDrive::uniform(specs.len(), 0.0),
                mu_base,
            });
        }
        let server = ShardedServer::new(
            markets,
            &ShardedConfig { shards: cfg.shards.max(1), ..Default::default() },
        )?;
        Ok(AdoptionLoop {
            cfg: cfg.clone(),
            specs: specs.to_vec(),
            price,
            cap,
            server,
            cohorts,
            scratch_specs: specs.to_vec(),
            tick: 0,
            sources: SourceCounts::default(),
        })
    }

    /// Advances every cohort by one closed-loop tick. Allocation-free
    /// after warm-up when the tick stays on the resident paths (serial
    /// block fan-out, no tangent seeding, no demand write-back tick) —
    /// the contract pinned in `tests/alloc_free.rs`.
    pub fn tick(&mut self) -> ServeResult<TickSummary> {
        self.tick += 1;
        let tick = self.tick;
        let mut adopted = 0u64;
        let mut mass = 0.0f64;
        let cfg = &self.cfg;
        let server = &mut self.server;
        let sources = &mut self.sources;
        for cohort in &mut self.cohorts {
            // 1. Externality read: lock-free when published, served
            // through the shard otherwise.
            let snap = match server.read_cached(cohort.market) {
                Some(snap) => {
                    sources.lockfree += 1;
                    snap
                }
                None => match server.serve(cohort.market, Request::Equilibrium)? {
                    Reply::Equilibrium { snap, source }
                    | Reply::Degenerate { snap, source, .. } => {
                        sources.note(source);
                        snap
                    }
                    _ => return Err(desync()),
                },
            };
            let subsidies = snap.subsidies();
            let theta = &snap.state().theta_i;
            for (i, t) in cohort.drive.t_eff.iter_mut().enumerate() {
                *t = (self.price - subsidies[i]).max(0.0);
            }
            for (i, g) in cohort.drive.gain.iter_mut().enumerate() {
                *g = 1.0 + cfg.gamma * theta[i];
            }
            drop(snap);
            // 2. Simulate one tick over the owned blocks.
            let ctx = cohort.pop.prepare_tick(&cohort.drive).map_err(ServeError::Num)?;
            parallel_map_mut(
                cohort.pop.blocks_mut(),
                cfg.threads,
                || (),
                |_, block| block.step(&ctx, &cohort.drive),
            );
            cohort.pop.refresh_masses();
            adopted += cohort.pop.adopted_users();
            let cohort_mass: f64 = cohort.pop.masses().iter().sum();
            mass += cohort_mass;
            // 3. Feed back: load depresses capacity; optionally arm the
            // tangent seed so the µ re-solve rides the predictor.
            let load = cohort.pop.adopted_fraction();
            let mu = cohort.mu_base / (1.0 + cfg.eta * load);
            if cfg.demand_every > 0 && tick % cfg.demand_every == 0 {
                // Demand write-back: realized masses become the new m⁰,
                // floored; CP 0's margin drifts with adoption. A full
                // submit resets warm seeds by design.
                for (spec, (&m, base)) in
                    self.scratch_specs.iter_mut().zip(cohort.pop.masses().iter().zip(&self.specs))
                {
                    spec.m0 = m.max(cfg.demand_floor * base.m0);
                }
                let game =
                    SubsidyGame::new(build_system(&self.scratch_specs, mu)?, self.price, self.cap)?;
                server.submit(cohort.market, game)?;
                let v0 = self.specs[0].v * (1.0 + 0.1 * load);
                server.serve(
                    cohort.market,
                    Request::Update { axis: Axis::Profitability(0), value: v0 },
                )?;
            }
            if cfg.seed_tangent {
                match server.serve(cohort.market, Request::Sensitivity { axis: Axis::Mu })? {
                    Reply::Sensitivity { .. } | Reply::Degenerate { .. } => {}
                    _ => return Err(desync()),
                }
            }
            server.serve(cohort.market, Request::Update { axis: Axis::Mu, value: mu })?;
            // 4. Warm re-solve; the published snapshot feeds the next
            // tick's externality read lock-free.
            match server.serve(cohort.market, Request::Equilibrium)? {
                Reply::Equilibrium { source, .. } | Reply::Degenerate { source, .. } => {
                    sources.note(source)
                }
                _ => return Err(desync()),
            }
        }
        Ok(TickSummary { tick, adopted, mass })
    }

    /// Runs `ticks` closed-loop ticks and folds every tick summary into
    /// a deterministic report.
    pub fn run(&mut self, ticks: u64) -> ServeResult<LoopReport> {
        let mut checksum = 0xCBF2_9CE4_8422_2325u64;
        let mut last = TickSummary { tick: self.tick, adopted: 0, mass: 0.0 };
        for _ in 0..ticks {
            last = self.tick()?;
            checksum = fnv_fold(checksum, last.tick);
            checksum = fnv_fold(checksum, last.adopted);
            checksum = fnv_fold(checksum, last.mass.to_bits());
        }
        Ok(LoopReport {
            ticks,
            cohorts: self.cfg.cohorts,
            users: self.cfg.users,
            final_adopted: last.adopted,
            final_mass: last.mass,
            sources: self.sources,
            checksum,
        })
    }

    /// Drops every cohort's warm-start state (workspace seeds, tangent
    /// seed, fingerprint cache, published snapshot) so the next tick's
    /// re-solves are cold — the benchmark control for warm-vs-cold.
    pub fn cool(&mut self) -> ServeResult<()> {
        for market in 0..self.cfg.cohorts as u64 {
            self.server.cool_market(market)?;
        }
        Ok(())
    }

    /// Per-type adopted masses of cohort `c` after the last tick.
    pub fn cohort_masses(&self, c: usize) -> &[f64] {
        self.cohorts[c].pop.masses()
    }

    /// The cohort populations (read access for cross-validation).
    pub fn cohort_population(&self, c: usize) -> &Population {
        &self.cohorts[c].pop
    }

    /// Cumulative equilibrium-answer source tallies.
    pub fn sources(&self) -> SourceCounts {
        self.sources
    }

    /// Ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The underlying sharded server (benchmark and test hook).
    pub fn server_mut(&mut self) -> &mut ShardedServer {
        &mut self.server
    }
}

/// Protocol-desync error shared by the reply matches.
fn desync() -> ServeError {
    ServeError::Num(NumError::Domain {
        what: "adoption loop: unexpected reply variant from the sharded server",
        value: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_specs;

    fn small_cfg() -> LoopConfig {
        LoopConfig {
            seed: 7,
            cohorts: 2,
            users: 2_000,
            chunk: 512,
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn loop_runs_and_reports_deterministically() {
        let specs = section5_specs();
        let run = |cfg: &LoopConfig| {
            let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, cfg).unwrap();
            lp.run(6).unwrap()
        };
        let cfg = small_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "identical configs must replay byte-identically");
        assert!(a.final_adopted > 0, "somebody should adopt");
        assert!(a.sources.total() > 0);
        // Thread and chunk variation cannot move the checksum.
        let threads4 = LoopConfig { threads: 4, ..cfg.clone() };
        let chunk97 = LoopConfig { chunk: 97, ..cfg.clone() };
        assert_eq!(run(&threads4).checksum, a.checksum, "threads");
        assert_eq!(run(&chunk97).checksum, a.checksum, "chunk");
        // More shards: same replies, same checksum.
        let shards2 = LoopConfig { shards: 2, ..cfg };
        assert_eq!(run(&shards2).checksum, a.checksum, "shards");
    }

    #[test]
    fn warm_loop_rides_warm_paths_and_cool_forces_cold() {
        let specs = section5_specs();
        let cfg = LoopConfig { cohorts: 1, ..small_cfg() };
        let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).unwrap();
        lp.run(5).unwrap();
        let warm = lp.sources();
        // After the first tick every re-solve is tangent/warm, never cold.
        assert_eq!(warm.cold, 1, "only the first solve is cold");
        assert!(warm.tangent + warm.warm >= 4, "re-solves must stay warm: {warm:?}");
        assert!(warm.lockfree >= 4, "externality reads must go lock-free: {warm:?}");
        // Cooling before each tick forces cold re-solves.
        for _ in 0..3 {
            lp.cool().unwrap();
            lp.tick().unwrap();
        }
        let cooled = lp.sources();
        assert_eq!(cooled.cold, warm.cold + 3, "each cooled tick pays a cold solve");
    }

    #[test]
    fn cohorts_are_isolated() {
        // Cohort 0's masses must not depend on how many cohorts run.
        let specs = section5_specs();
        let solo = LoopConfig { cohorts: 1, ..small_cfg() };
        let duo = LoopConfig { cohorts: 3, ..small_cfg() };
        let mut a = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &solo).unwrap();
        let mut b = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &duo).unwrap();
        a.run(4).unwrap();
        b.run(4).unwrap();
        assert_eq!(a.cohort_masses(0), b.cohort_masses(0));
    }

    #[test]
    fn demand_writeback_keeps_the_loop_alive() {
        let specs = section5_specs();
        let cfg = LoopConfig { cohorts: 1, demand_every: 3, ..small_cfg() };
        let mut lp = AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).unwrap();
        let report = lp.run(7).unwrap();
        assert!(report.final_adopted > 0);
        // Submits reset warm chains, so some post-submit solves are
        // warm-from-previous or cold rather than tangent — but the loop
        // must keep answering.
        assert_eq!(report.sources.partial, 0);
    }

    #[test]
    fn new_validates_config() {
        let specs = section5_specs();
        let bad = |cfg: LoopConfig| AdoptionLoop::new(&specs, 3.0, 0.6, 0.8, &cfg).is_err();
        assert!(bad(LoopConfig { cohorts: 0, ..small_cfg() }));
        assert!(bad(LoopConfig { gamma: -1.0, ..small_cfg() }));
        assert!(bad(LoopConfig { eta: f64::NAN, ..small_cfg() }));
        assert!(bad(LoopConfig { demand_floor: 0.0, ..small_cfg() }));
    }
}
