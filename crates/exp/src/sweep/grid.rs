//! 2-D continuation over a `(q, p)` parameter grid — the engine behind
//! the §5 figure panel, the price sweeps and the grid benchmarks.
//!
//! The paper's entire evaluation is a dense grid of Nash solves, and
//! Theorem 6 (comparative statics) guarantees that equilibria at adjacent
//! grid points are close. [`GridSolver`] exploits that twice:
//!
//! 1. **Price-axis continuation** — the first row is swept left to right,
//!    each solve warm-started from its neighbour's equilibrium.
//! 2. **Row seeding** — every later cap row starts each point from the
//!    *adjacent row's* solution at the same price, so only one point of
//!    the whole grid ever solves cold (per block; see below). A seeded
//!    solve that fails to converge automatically falls back to a cold
//!    solve, and a cold threshold-BR solve that fails falls back to the
//!    robust grid-scan engine — continuation can never *lose* a point,
//!    only speed it up.
//!
//! Reparameterizing a grid point is two scalar writes
//! ([`SubsidyGame::set_price`] / [`SubsidyGame::set_cap`]): the `System`
//! and its precompiled kernel are built once per worker and never cloned
//! again, and all transients live in a caller-owned [`GridContext`], so
//! after warm-up the sequential engine performs **zero heap allocation
//! per grid point** (pinned by `tests/alloc_free.rs`).
//!
//! Parallelism follows the [`BatchSolver`](super::BatchSolver) recipe:
//! the grid is split into fixed-width *column blocks*, each block is one
//! self-contained continuation (its first row starts cold), and blocks —
//! not points — are fanned across workers. Because the block structure
//! depends only on [`GridSolver::block`], results are **bit-identical for
//! any thread count**.

use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::{NashSolver, SolveStats, WarmStart};
use subcomp_core::welfare::welfare;
use subcomp_core::workspace::SolveWorkspace;
use subcomp_model::system::System;
use subcomp_num::{NumError, NumResult};

/// A solved equilibrium grid in flat, column-major storage.
///
/// Per-point scalars (`phi`, `revenue`, …) live at index `c·R + r` and
/// per-CP vectors at `(c·R + r)·n`, where `R` is the number of cap rows —
/// column-major so a column block occupies one contiguous slab, which is
/// what lets the parallel solver hand disjoint `&mut` slices to workers
/// with no locking. Use [`EqGrid::point`] for ergonomic access; the grid
/// doubles as a reusable output buffer for [`GridSolver::solve_into`]
/// (buffers only grow, so re-solving a same-shape grid allocates nothing).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EqGrid {
    qs: Vec<f64>,
    prices: Vec<f64>,
    n: usize,
    subsidies: Vec<f64>,
    m: Vec<f64>,
    theta: Vec<f64>,
    utilities: Vec<f64>,
    phi: Vec<f64>,
    revenue: Vec<f64>,
    welfare: Vec<f64>,
    iterations: Vec<u32>,
    cold: Vec<bool>,
}

/// A borrowed view of one solved grid point — every quantity the figure
/// extractors read, without per-point allocation.
#[derive(Debug, Clone, Copy)]
pub struct EqPointView<'a> {
    /// Policy cap at this point.
    pub q: f64,
    /// ISP price at this point.
    pub p: f64,
    /// Equilibrium subsidies per CP.
    pub subsidies: &'a [f64],
    /// Equilibrium populations per CP.
    pub m: &'a [f64],
    /// Equilibrium throughput per CP.
    pub theta: &'a [f64],
    /// Equilibrium utilities per CP.
    pub utilities: &'a [f64],
    /// System utilization.
    pub phi: f64,
    /// ISP revenue `p · θ`.
    pub revenue: f64,
    /// System welfare `W = Σ v_i θ_i`.
    pub welfare: f64,
    /// Best-response sweeps this point's solve took.
    pub iterations: usize,
    /// Whether the point solved cold (block start or continuation
    /// fallback) rather than from a continuation seed.
    pub cold: bool,
}

impl EqGrid {
    /// An empty grid to use as a reusable output buffer.
    pub fn empty() -> EqGrid {
        EqGrid::default()
    }

    /// Cap rows.
    pub fn qs(&self) -> &[f64] {
        &self.qs
    }

    /// Price columns.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Number of cap rows.
    pub fn n_rows(&self) -> usize {
        self.qs.len()
    }

    /// Number of price columns.
    pub fn n_cols(&self) -> usize {
        self.prices.len()
    }

    /// Number of CP types.
    pub fn n_cps(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.n_rows() && c < self.n_cols());
        c * self.qs.len() + r
    }

    /// The solved point at cap row `r`, price column `c`.
    pub fn point(&self, r: usize, c: usize) -> EqPointView<'_> {
        let o = self.idx(r, c);
        let n = self.n;
        EqPointView {
            q: self.qs[r],
            p: self.prices[c],
            subsidies: &self.subsidies[o * n..(o + 1) * n],
            m: &self.m[o * n..(o + 1) * n],
            theta: &self.theta[o * n..(o + 1) * n],
            utilities: &self.utilities[o * n..(o + 1) * n],
            phi: self.phi[o],
            revenue: self.revenue[o],
            welfare: self.welfare[o],
            iterations: self.iterations[o] as usize,
            cold: self.cold[o],
        }
    }

    /// Number of points that solved cold (block starts plus continuation
    /// fallbacks) — the continuation health indicator the grid benches
    /// track.
    pub fn cold_solves(&self) -> usize {
        self.cold.iter().filter(|&&c| c).count()
    }

    /// Total best-response sweeps spent over the whole grid.
    pub fn total_sweeps(&self) -> usize {
        self.iterations.iter().map(|&k| k as usize).sum()
    }

    /// Sizes every buffer for an `R × C × n` grid, retaining capacity.
    fn prepare(&mut self, qs: &[f64], prices: &[f64], n: usize) {
        self.qs.clear();
        self.qs.extend_from_slice(qs);
        self.prices.clear();
        self.prices.extend_from_slice(prices);
        self.n = n;
        let points = qs.len() * prices.len();
        for buf in [&mut self.subsidies, &mut self.m, &mut self.theta, &mut self.utilities] {
            buf.resize(points * n, 0.0);
        }
        for buf in [&mut self.phi, &mut self.revenue, &mut self.welfare] {
            buf.resize(points, 0.0);
        }
        self.iterations.resize(points, 0);
        self.cold.resize(points, false);
    }
}

/// Per-worker continuation state: the mutable game being reparameterized
/// (one `System` clone at construction — the only one the grid ever
/// pays), the solver workspace, and the row-seed buffer. Reusable across
/// [`GridSolver::solve_into`] calls; zero allocation once warm.
#[derive(Debug, Clone)]
pub struct GridContext {
    game: SubsidyGame,
    ws: SolveWorkspace,
    seed: Vec<f64>,
}

impl GridContext {
    /// A context for grids over `system`.
    pub fn new(system: &System) -> GridContext {
        let game = SubsidyGame::new(system.clone(), 0.0, 0.0)
            .expect("p = q = 0 is always a valid parameterization");
        let ws = SolveWorkspace::for_game(&game);
        let n = game.n();
        GridContext { game, ws, seed: vec![0.0; n] }
    }
}

/// The 2-D continuation grid solver (module docs).
#[derive(Debug, Clone)]
pub struct GridSolver {
    /// The continuation solver. The default runs the Theorem 3 threshold
    /// best response at tolerance `1e-8` — the panel's historical
    /// tolerance; every answer agrees with the grid-scan engine to root
    /// tolerance (`tests/grid_continuation.rs` pins this on random grids).
    pub solver: NashSolver,
    /// Worker threads for block fan-out (`<= 1` runs sequentially;
    /// results are bit-identical either way).
    pub threads: usize,
    /// Price columns per continuation block — the unit of parallel
    /// distribution. Results depend on this, never on `threads`.
    pub block: usize,
    /// Process cap rows last-to-first (seeding row `r` from row `r + 1`).
    /// Exists to demonstrate continuation-path independence; results
    /// agree with forward order to solver tolerance.
    pub reverse_rows: bool,
}

impl Default for GridSolver {
    fn default() -> Self {
        GridSolver {
            solver: NashSolver::default().with_tol(1e-8).with_threshold_br(true),
            threads: 1,
            block: 16,
            reverse_rows: false,
        }
    }
}

/// One block task: a contiguous range of price columns plus the matching
/// slabs of every output buffer.
struct BlockTask<'a> {
    prices: &'a [f64],
    subsidies: &'a mut [f64],
    m: &'a mut [f64],
    theta: &'a mut [f64],
    utilities: &'a mut [f64],
    phi: &'a mut [f64],
    revenue: &'a mut [f64],
    welfare: &'a mut [f64],
    iterations: &'a mut [u32],
    cold: &'a mut [bool],
}

impl GridSolver {
    /// Returns a copy fanning blocks across `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different block width (minimum 1).
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// Returns a copy with a different continuation solver.
    pub fn with_solver(mut self, solver: NashSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Returns a copy processing cap rows in reverse order.
    pub fn with_reverse_rows(mut self, reverse: bool) -> Self {
        self.reverse_rows = reverse;
        self
    }

    /// Solves the full grid, allocating the result.
    pub fn solve(&self, system: &System, qs: &[f64], prices: &[f64]) -> NumResult<EqGrid> {
        let mut out = EqGrid::empty();
        self.solve_into(system, qs, prices, &mut out)?;
        Ok(out)
    }

    /// Solves the full grid into a reusable [`EqGrid`], fanning column
    /// blocks across [`GridSolver::threads`] workers (one [`GridContext`]
    /// each). Bit-identical to the sequential engine for any thread count.
    pub fn solve_into(
        &self,
        system: &System,
        qs: &[f64],
        prices: &[f64],
        out: &mut EqGrid,
    ) -> NumResult<()> {
        validate_grid(qs, prices)?;
        out.prepare(qs, prices, system.n());
        let mut tasks: Vec<BlockTask<'_>> = block_tasks(out, self.block.max(1), prices).collect();
        if self.threads <= 1 || tasks.len() <= 1 {
            let mut ctx = GridContext::new(system);
            for task in &mut tasks {
                self.solve_block(qs, &mut ctx, task)?;
            }
            return Ok(());
        }
        let workers = self.threads.min(tasks.len());
        let chunk = tasks.len().div_ceil(workers);
        let mut results: Vec<NumResult<()>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for slab in tasks.chunks_mut(chunk) {
                handles.push(scope.spawn(move || {
                    let mut ctx = GridContext::new(system);
                    for task in slab.iter_mut() {
                        self.solve_block(qs, &mut ctx, task)?;
                    }
                    Ok(())
                }));
            }
            results =
                handles.into_iter().map(|h| h.join().expect("grid worker panicked")).collect();
        });
        results.into_iter().collect()
    }

    /// The sequential, allocation-free engine: solves the whole grid
    /// through one caller-owned context into `out`. After a first call of
    /// a given shape (warm-up), repeated calls perform zero heap
    /// allocation — the contract `tests/alloc_free.rs` pins. Results are
    /// bit-identical to [`GridSolver::solve_into`] at any thread count.
    pub fn solve_seq_into(
        &self,
        ctx: &mut GridContext,
        qs: &[f64],
        prices: &[f64],
        out: &mut EqGrid,
    ) -> NumResult<()> {
        validate_grid(qs, prices)?;
        out.prepare(qs, prices, ctx.game.n());
        for mut task in block_tasks(out, self.block.max(1), prices) {
            self.solve_block(qs, ctx, &mut task)?;
        }
        Ok(())
    }

    /// Solves one column block: price continuation along the first
    /// processed row, row seeding for every later row, cold fallback on
    /// non-convergence.
    fn solve_block(
        &self,
        qs: &[f64],
        ctx: &mut GridContext,
        blk: &mut BlockTask<'_>,
    ) -> NumResult<()> {
        let rows = qs.len();
        let n = ctx.game.n();
        ctx.seed.resize(n, 0.0);
        for step in 0..rows {
            let r = if self.reverse_rows { rows - 1 - step } else { step };
            ctx.game.set_cap(qs[r])?;
            for (cl, &p) in blk.prices.iter().enumerate() {
                ctx.game.set_price(p)?;
                let o = cl * rows + r;
                let (stats, cold) = if step == 0 {
                    if cl == 0 {
                        (self.solve_cold(ctx)?, true)
                    } else {
                        // Price-axis continuation: the workspace still
                        // holds the previous column's equilibrium.
                        self.solve_seeded(ctx, WarmStart::Previous)?
                    }
                } else {
                    // Row seeding: start from the adjacent row's solution
                    // at this price, re-clamped into the new cap's box.
                    let prev = if self.reverse_rows { r + 1 } else { r - 1 };
                    let po = (cl * rows + prev) * n;
                    for i in 0..n {
                        ctx.seed[i] = blk.subsidies[po + i].clamp(0.0, ctx.game.effective_cap(i));
                    }
                    let seed = std::mem::take(&mut ctx.seed);
                    let result = self.solve_seeded(ctx, WarmStart::Profile(&seed));
                    ctx.seed = seed;
                    result?
                };
                blk.subsidies[o * n..(o + 1) * n].copy_from_slice(ctx.ws.subsidies());
                let state = ctx.ws.state();
                blk.m[o * n..(o + 1) * n].copy_from_slice(&state.m);
                blk.theta[o * n..(o + 1) * n].copy_from_slice(&state.theta_i);
                blk.utilities[o * n..(o + 1) * n].copy_from_slice(ctx.ws.utilities());
                blk.phi[o] = state.phi;
                blk.revenue[o] = p * state.theta();
                blk.welfare[o] = welfare(&ctx.game, state);
                blk.iterations[o] = stats.iterations as u32;
                blk.cold[o] = cold;
            }
        }
        Ok(())
    }

    /// A continuation-seeded solve with automatic cold fallback.
    fn solve_seeded(
        &self,
        ctx: &mut GridContext,
        start: WarmStart<'_>,
    ) -> NumResult<(SolveStats, bool)> {
        match self.solver.solve_into(&ctx.game, start, &mut ctx.ws) {
            Ok(stats) => Ok((stats, false)),
            Err(_) => Ok((self.solve_cold(ctx)?, true)),
        }
    }

    /// A cold solve; if the continuation solver itself fails from zero,
    /// retry once on the robust grid-scan best response.
    fn solve_cold(&self, ctx: &mut GridContext) -> NumResult<SolveStats> {
        match self.solver.solve_into(&ctx.game, WarmStart::Zero, &mut ctx.ws) {
            Ok(stats) => Ok(stats),
            Err(err) => {
                if !self.solver.threshold_br {
                    return Err(err);
                }
                self.solver.with_threshold_br(false).solve_into(
                    &ctx.game,
                    WarmStart::Zero,
                    &mut ctx.ws,
                )
            }
        }
    }
}

fn validate_grid(qs: &[f64], prices: &[f64]) -> NumResult<()> {
    for &q in qs {
        if !(q >= 0.0) || !q.is_finite() {
            return Err(NumError::Domain { what: "grid cap must be non-negative", value: q });
        }
    }
    for &p in prices {
        if !(p >= 0.0) || !p.is_finite() {
            return Err(NumError::Domain { what: "grid price must be non-negative", value: p });
        }
    }
    Ok(())
}

/// Lazily splits the grid's output buffers into per-block mutable slabs
/// (the column-major layout makes every block contiguous in every
/// buffer). An iterator rather than a `Vec` so the sequential engine can
/// walk blocks without allocating — `tests/alloc_free.rs` counts on it.
fn block_tasks<'a>(
    out: &'a mut EqGrid,
    block: usize,
    prices: &'a [f64],
) -> impl Iterator<Item = BlockTask<'a>> {
    let rows = out.qs.len();
    let n = out.n;
    let per_cp = (block * rows * n).max(1);
    let per_pt = (block * rows).max(1);
    prices
        .chunks(block)
        .zip(out.subsidies.chunks_mut(per_cp))
        .zip(out.m.chunks_mut(per_cp))
        .zip(out.theta.chunks_mut(per_cp))
        .zip(out.utilities.chunks_mut(per_cp))
        .zip(out.phi.chunks_mut(per_pt))
        .zip(out.revenue.chunks_mut(per_pt))
        .zip(out.welfare.chunks_mut(per_pt))
        .zip(out.iterations.chunks_mut(per_pt))
        .zip(out.cold.chunks_mut(per_pt))
        .map(
            |(
                (
                    (((((((prices, subsidies), m), theta), utilities), phi), revenue), welfare),
                    iterations,
                ),
                cold,
            )| {
                BlockTask {
                    prices,
                    subsidies,
                    m,
                    theta,
                    utilities,
                    phi,
                    revenue,
                    welfare,
                    iterations,
                    cold,
                }
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;

    fn small_grid() -> (Vec<f64>, Vec<f64>) {
        (vec![0.0, 0.6, 1.2], vec![0.2, 0.5, 0.8, 1.1, 1.5])
    }

    #[test]
    fn grid_matches_independent_cold_solves() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let grid = GridSolver::default().solve(&sys, &qs, &prices).unwrap();
        assert_eq!(grid.n_rows(), 3);
        assert_eq!(grid.n_cols(), 5);
        assert_eq!(grid.n_cps(), 8);
        let solver = NashSolver::default().with_tol(1e-8);
        for (r, &q) in qs.iter().enumerate() {
            for (c, &p) in prices.iter().enumerate() {
                let game = SubsidyGame::new(sys.clone(), p, q).unwrap();
                let cold = solver.solve(&game).unwrap();
                let pt = grid.point(r, c);
                assert_eq!(pt.q, q);
                assert_eq!(pt.p, p);
                for i in 0..8 {
                    assert!(
                        (pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6,
                        "(q={q}, p={p}) CP {i}: grid {} vs cold {}",
                        pt.subsidies[i],
                        cold.subsidies[i]
                    );
                }
                assert!((pt.phi - cold.state.phi).abs() < 1e-6);
                assert!((pt.revenue - cold.isp_revenue(&game)).abs() < 1e-6);
                assert!((pt.welfare - cold.welfare(&game)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let base = GridSolver::default().with_block(2);
        let one = base.clone().with_threads(1).solve(&sys, &qs, &prices).unwrap();
        let four = base.with_threads(4).solve(&sys, &qs, &prices).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn sequential_engine_matches_parallel() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let solver = GridSolver::default().with_block(2);
        let parallel = solver.clone().with_threads(3).solve(&sys, &qs, &prices).unwrap();
        let mut ctx = GridContext::new(&sys);
        let mut seq = EqGrid::empty();
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut seq).unwrap();
        assert_eq!(parallel, seq);
        // And the context + buffer are reusable: a second run reproduces
        // the same grid byte for byte.
        let mut again = EqGrid::empty();
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut again).unwrap();
        assert_eq!(seq, again);
    }

    #[test]
    fn reverse_row_order_agrees_within_tolerance() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let fwd = GridSolver::default().solve(&sys, &qs, &prices).unwrap();
        let rev = GridSolver::default().with_reverse_rows(true).solve(&sys, &qs, &prices).unwrap();
        for r in 0..qs.len() {
            for c in 0..prices.len() {
                let (a, b) = (fwd.point(r, c), rev.point(r, c));
                for i in 0..8 {
                    assert!(
                        (a.subsidies[i] - b.subsidies[i]).abs() < 1e-6,
                        "(r={r}, c={c}) CP {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn continuation_solves_mostly_warm() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let grid = GridSolver::default().with_block(8).solve(&sys, &qs, &prices).unwrap();
        // One block => exactly one planned cold solve; fallbacks would
        // push the count up (and flag a continuation regression).
        assert_eq!(grid.cold_solves(), 1, "continuation fell back to cold solves");
        assert!(grid.point(0, 0).cold);
        assert!(!grid.point(2, 4).cold);
        assert!(grid.total_sweeps() > 0);
    }

    #[test]
    fn zero_cap_row_pins_subsidies() {
        let sys = section5_system();
        let grid = GridSolver::default().solve(&sys, &[0.0, 1.0], &[0.4, 0.9]).unwrap();
        for c in 0..2 {
            assert!(grid.point(0, c).subsidies.iter().all(|&s| s == 0.0));
            assert!(grid.point(1, c).subsidies.iter().any(|&s| s > 0.0));
        }
    }

    #[test]
    fn empty_and_invalid_grids() {
        let sys = section5_system();
        let grid = GridSolver::default().solve(&sys, &[], &[0.5]).unwrap();
        assert_eq!(grid.n_rows(), 0);
        let grid = GridSolver::default().solve(&sys, &[0.5], &[]).unwrap();
        assert_eq!(grid.n_cols(), 0);
        assert!(GridSolver::default().solve(&sys, &[-0.1], &[0.5]).is_err());
        assert!(GridSolver::default().solve(&sys, &[0.5], &[f64::NAN]).is_err());
    }
}
