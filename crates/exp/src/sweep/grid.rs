//! The historical home of the `(q, p)` grid engine, kept as a thin
//! re-export: the engine itself now lives in
//! [`continuation`](super::continuation), generalized to arbitrary
//! parameter axes ([`Axis`](super::continuation::Axis)). [`GridSolver`] is
//! an alias for the default `Cap × Price` parameterization of
//! [`ContinuationSolver`](super::continuation::ContinuationSolver), so
//! every pre-existing `(q, p)` caller is untouched and bit-identical.

pub use super::continuation::*;
