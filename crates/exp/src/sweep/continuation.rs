//! Axis-generic continuation over parameter grids — the engine behind the
//! §5 figure panel, the price/µ/v sweeps and the grid benchmarks.
//!
//! The paper's evaluation is a dense family of Nash solves indexed by
//! parameters, and its comparative-statics results guarantee that
//! equilibria at adjacent parameter values are close: Theorem 6 for the
//! `(q, p)` axes, Theorem 1 for the capacity `µ`, Theorem 5 for the
//! profitabilities `v_i`. [`ContinuationSolver`] exploits that for *any*
//! pair of [`Axis`] values:
//!
//! 1. **Column-axis continuation** — the first row is swept left to right,
//!    each solve warm-started from its neighbour's equilibrium
//!    ([`WarmStart::Previous`]), or — with
//!    [`ContinuationSolver::with_tangent`] — from a Theorem 6 first-order
//!    predictor ([`WarmStart::Tangent`], tangents from
//!    [`Sensitivity::directional`]).
//! 2. **Row seeding** — every later row starts each point from the
//!    *adjacent row's* solution at the same column, so only one point of
//!    the whole grid ever solves cold (per block; see below). A seeded
//!    solve that fails to converge automatically falls back to a cold
//!    solve, and a cold threshold-BR solve that fails falls back to the
//!    robust grid-scan engine — continuation can never *lose* a point,
//!    only speed it up.
//!
//! Reparameterizing a grid point is two scalar writes through the axis
//! setters ([`SubsidyGame::set_price`] / [`SubsidyGame::set_cap`] /
//! [`SubsidyGame::set_mu`] / [`SubsidyGame::set_profitability`]): the
//! `System` and its precompiled kernel are built once per worker and never
//! cloned or rebuilt again, and all transients live in a caller-owned
//! [`GridContext`], so after warm-up the sequential engine performs **zero
//! heap allocation per grid point** on every axis (pinned by
//! `tests/alloc_free.rs` for both the classic `(q, p)` panel and a µ-axis
//! sweep). The tangent predictor is the one exception: computing a
//! Theorem 6 directional derivative assembles a Jacobian, so
//! [`ContinuationSolver::with_tangent`] trades allocations for fewer
//! corrector sweeps and is benchmarked, not alloc-pinned.
//!
//! Parallelism follows the [`BatchSolver`](super::BatchSolver) recipe: the
//! grid is split into fixed-width *column blocks*, each block is one
//! self-contained continuation (its first row starts cold), and blocks —
//! not points — are fanned across workers. Because the block structure
//! depends only on [`ContinuationSolver::block`], results are
//! **bit-identical for any thread count**.
//!
//! [`GridSolver`] — the engine's historical name — is an alias for the
//! default `Cap × Price` parameterization; existing `(q, p)` callers are
//! untouched and bit-identical (the `(q, p)` goldens and grid benches did
//! not move in the axis generalization).

use subcomp_core::game::SubsidyGame;
use subcomp_core::nash::{NashSolver, SolveStats, WarmStart};
use subcomp_core::sensitivity::Sensitivity;
use subcomp_core::welfare::welfare;
use subcomp_core::workspace::SolveWorkspace;
use subcomp_model::system::{System, SystemState};
use subcomp_num::{NumError, NumResult};

pub use subcomp_core::game::Axis;

/// A solved equilibrium grid in flat, column-major storage.
///
/// Per-point scalars (`phi`, `revenue`, …) live at index `c·R + r` and
/// per-CP vectors at `(c·R + r)·n`, where `R` is the number of rows —
/// column-major so a column block occupies one contiguous slab, which is
/// what lets the parallel solver hand disjoint `&mut` slices to workers
/// with no locking. Use [`EqGrid::point`] for ergonomic access; the grid
/// doubles as a reusable output buffer for
/// [`ContinuationSolver::solve_seq_into`] (buffers only grow, so
/// re-solving a same-shape grid allocates nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct EqGrid {
    row_axis: Axis,
    col_axis: Axis,
    rows: Vec<f64>,
    cols: Vec<f64>,
    n: usize,
    subsidies: Vec<f64>,
    m: Vec<f64>,
    theta: Vec<f64>,
    utilities: Vec<f64>,
    phi: Vec<f64>,
    revenue: Vec<f64>,
    welfare: Vec<f64>,
    iterations: Vec<u32>,
    cold: Vec<bool>,
    tangent_fallback: Vec<bool>,
}

impl Default for EqGrid {
    fn default() -> Self {
        EqGrid {
            row_axis: Axis::Cap,
            col_axis: Axis::Price,
            rows: Vec::new(),
            cols: Vec::new(),
            n: 0,
            subsidies: Vec::new(),
            m: Vec::new(),
            theta: Vec::new(),
            utilities: Vec::new(),
            phi: Vec::new(),
            revenue: Vec::new(),
            welfare: Vec::new(),
            iterations: Vec::new(),
            cold: Vec::new(),
            tangent_fallback: Vec::new(),
        }
    }
}

/// A borrowed view of one solved grid point — every quantity the figure
/// extractors read, without per-point allocation.
#[derive(Debug, Clone, Copy)]
pub struct EqPointView<'a> {
    /// Row-axis parameter value at this point (the policy cap `q` on the
    /// §5 panel's default `Cap × Price` grid).
    pub row: f64,
    /// Column-axis parameter value at this point (the ISP price `p` on
    /// the default grid).
    pub col: f64,
    /// Equilibrium subsidies per CP.
    pub subsidies: &'a [f64],
    /// Equilibrium populations per CP.
    pub m: &'a [f64],
    /// Equilibrium throughput per CP.
    pub theta: &'a [f64],
    /// Equilibrium utilities per CP.
    pub utilities: &'a [f64],
    /// System utilization.
    pub phi: f64,
    /// ISP revenue `p · θ` (at the point's price — the price axis value
    /// when price is swept, the base game's price otherwise).
    pub revenue: f64,
    /// System welfare `W = Σ v_i θ_i`.
    pub welfare: f64,
    /// Best-response sweeps this point's solve took.
    pub iterations: usize,
    /// Whether the point solved cold (block start or continuation
    /// fallback) rather than from a continuation seed.
    pub cold: bool,
    /// Whether this point wanted a Theorem 6 tangent start but degraded
    /// to previous-iterate seeding because the derivative was unavailable
    /// at the preceding equilibrium (degenerate equilibrium — a provider
    /// exactly at its utility threshold). Always `false` outside tangent
    /// mode. The solution itself is unaffected; this marks where the
    /// predictor could not be trusted.
    pub tangent_fallback: bool,
}

impl EqGrid {
    /// An empty grid to use as a reusable output buffer.
    pub fn empty() -> EqGrid {
        EqGrid::default()
    }

    /// The row axis.
    pub fn row_axis(&self) -> Axis {
        self.row_axis
    }

    /// The column axis.
    pub fn col_axis(&self) -> Axis {
        self.col_axis
    }

    /// Row-axis values.
    pub fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Column-axis values.
    pub fn cols(&self) -> &[f64] {
        &self.cols
    }

    /// Cap rows — the row-axis values, under the name the `(q, p)` panel
    /// and figure extractors use.
    pub fn qs(&self) -> &[f64] {
        &self.rows
    }

    /// Price columns — the column-axis values, under the name the
    /// `(q, p)` panel and figure extractors use.
    pub fn prices(&self) -> &[f64] {
        &self.cols
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of CP types.
    pub fn n_cps(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.n_rows() && c < self.n_cols());
        c * self.rows.len() + r
    }

    /// The solved point at row `r`, column `c`.
    pub fn point(&self, r: usize, c: usize) -> EqPointView<'_> {
        let o = self.idx(r, c);
        let n = self.n;
        EqPointView {
            row: self.rows[r],
            col: self.cols[c],
            subsidies: &self.subsidies[o * n..(o + 1) * n],
            m: &self.m[o * n..(o + 1) * n],
            theta: &self.theta[o * n..(o + 1) * n],
            utilities: &self.utilities[o * n..(o + 1) * n],
            phi: self.phi[o],
            revenue: self.revenue[o],
            welfare: self.welfare[o],
            iterations: self.iterations[o] as usize,
            cold: self.cold[o],
            tangent_fallback: self.tangent_fallback[o],
        }
    }

    /// Number of points that solved cold (block starts plus continuation
    /// fallbacks) — the continuation health indicator the grid benches
    /// track.
    pub fn cold_solves(&self) -> usize {
        self.cold.iter().filter(|&&c| c).count()
    }

    /// Total best-response sweeps spent over the whole grid.
    pub fn total_sweeps(&self) -> usize {
        self.iterations.iter().map(|&k| k as usize).sum()
    }

    /// Number of points where the tangent predictor degraded to
    /// previous-iterate seeding (see [`EqPointView::tangent_fallback`]).
    /// Zero outside tangent mode.
    pub fn tangent_fallbacks(&self) -> usize {
        self.tangent_fallback.iter().filter(|&&f| f).count()
    }

    /// Sizes every buffer for an `R × C × n` grid, retaining capacity.
    fn prepare(&mut self, row_axis: Axis, col_axis: Axis, rows: &[f64], cols: &[f64], n: usize) {
        self.row_axis = row_axis;
        self.col_axis = col_axis;
        self.rows.clear();
        self.rows.extend_from_slice(rows);
        self.cols.clear();
        self.cols.extend_from_slice(cols);
        self.n = n;
        let points = rows.len() * cols.len();
        for buf in [&mut self.subsidies, &mut self.m, &mut self.theta, &mut self.utilities] {
            buf.resize(points * n, 0.0);
        }
        for buf in [&mut self.phi, &mut self.revenue, &mut self.welfare] {
            buf.resize(points, 0.0);
        }
        self.iterations.resize(points, 0);
        self.cold.resize(points, false);
        self.tangent_fallback.resize(points, false);
    }
}

/// Per-worker continuation state: the mutable game being reparameterized
/// (one `System` clone at construction — the only one the grid ever
/// pays), the solver workspace, the row-seed buffer and the tangent
/// buffer. Reusable across [`ContinuationSolver::solve_seq_into`] calls;
/// zero allocation once warm (tangent mode excepted — see the module
/// docs).
#[derive(Debug, Clone)]
pub struct GridContext {
    game: SubsidyGame,
    ws: SolveWorkspace,
    seed: Vec<f64>,
    tangent: Vec<f64>,
}

impl GridContext {
    /// A context for grids over `system`, parameterized at `p = q = 0`
    /// (every non-swept parameter keeps that base; grids whose axes cover
    /// other parameters should use [`GridContext::for_game`]).
    pub fn new(system: &System) -> GridContext {
        let game = SubsidyGame::new(system.clone(), 0.0, 0.0)
            .expect("p = q = 0 is always a valid parameterization");
        GridContext::for_game(&game)
    }

    /// A context for grids over `base` — the non-swept parameters (price,
    /// cap, capacity, profitabilities) keep the base game's values.
    pub fn for_game(base: &SubsidyGame) -> GridContext {
        let game = base.clone();
        let ws = SolveWorkspace::for_game(&game);
        let n = game.n();
        GridContext { game, ws, seed: vec![0.0; n], tangent: Vec::with_capacity(n) }
    }
}

/// The axis-generic 2-D continuation solver (module docs).
#[derive(Debug, Clone)]
pub struct ContinuationSolver {
    /// The continuation solver. The default runs the Theorem 3 threshold
    /// best response at tolerance `1e-8` — the panel's historical
    /// tolerance; every answer agrees with the grid-scan engine to root
    /// tolerance (`tests/grid_continuation.rs` pins this on random grids).
    pub solver: NashSolver,
    /// Worker threads for block fan-out (`<= 1` runs sequentially;
    /// results are bit-identical either way).
    pub threads: usize,
    /// Columns per continuation block — the unit of parallel
    /// distribution. Results depend on this, never on `threads`.
    pub block: usize,
    /// Process rows last-to-first (seeding row `r` from row `r + 1`).
    /// Exists to demonstrate continuation-path independence; results
    /// agree with forward order to solver tolerance.
    pub reverse_rows: bool,
    /// The parameter swept across rows (default [`Axis::Cap`]).
    pub row_axis: Axis,
    /// The parameter swept across columns (default [`Axis::Price`]).
    pub col_axis: Axis,
    /// Use the Theorem 6 tangent predictor for the column-axis
    /// continuation along each block's first processed row: after each
    /// solve the equilibrium's directional derivative along
    /// [`ContinuationSolver::col_axis`] seeds a first-order prediction of
    /// the next point ([`WarmStart::Tangent`]), which the solver then only
    /// corrects. Falls back to [`WarmStart::Previous`] whenever the
    /// derivative is unavailable (degenerate equilibrium). Allocates per
    /// point (Jacobian assembly) — see the module docs.
    pub tangent: bool,
}

impl Default for ContinuationSolver {
    fn default() -> Self {
        ContinuationSolver {
            solver: NashSolver::default().with_tol(1e-8).with_threshold_br(true),
            threads: 1,
            block: 16,
            reverse_rows: false,
            row_axis: Axis::Cap,
            col_axis: Axis::Price,
            tangent: false,
        }
    }
}

/// The `(q, p)` grid engine of the §5 panel — the historical name of
/// [`ContinuationSolver`], whose default axes are exactly `Cap × Price`.
pub type GridSolver = ContinuationSolver;

/// One block task: a contiguous range of columns plus the matching slabs
/// of every output buffer.
struct BlockTask<'a> {
    cols: &'a [f64],
    subsidies: &'a mut [f64],
    m: &'a mut [f64],
    theta: &'a mut [f64],
    utilities: &'a mut [f64],
    phi: &'a mut [f64],
    revenue: &'a mut [f64],
    welfare: &'a mut [f64],
    iterations: &'a mut [u32],
    cold: &'a mut [bool],
    tangent_fallback: &'a mut [bool],
}

impl ContinuationSolver {
    /// A solver sweeping `row_axis` across rows and `col_axis` across
    /// columns (all other parameters stay at the base game's values).
    pub fn over(row_axis: Axis, col_axis: Axis) -> Self {
        ContinuationSolver { row_axis, col_axis, ..ContinuationSolver::default() }
    }

    /// Returns a copy fanning blocks across `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different block width (minimum 1).
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// Returns a copy with a different continuation solver.
    pub fn with_solver(mut self, solver: NashSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Returns a copy processing rows in reverse order.
    pub fn with_reverse_rows(mut self, reverse: bool) -> Self {
        self.reverse_rows = reverse;
        self
    }

    /// Returns a copy with the Theorem 6 tangent predictor enabled (see
    /// [`ContinuationSolver::tangent`]).
    pub fn with_tangent(mut self, tangent: bool) -> Self {
        self.tangent = tangent;
        self
    }

    /// Solves the full grid over `system` at base `p = q = 0`, allocating
    /// the result. This is the historical `(q, p)` entry point: both
    /// parameters not covered by [`ContinuationSolver::row_axis`] /
    /// [`ContinuationSolver::col_axis`] stay at zero — sweeps over other
    /// axes should parameterize a base game and use
    /// [`ContinuationSolver::solve_game`].
    pub fn solve(&self, system: &System, rows: &[f64], cols: &[f64]) -> NumResult<EqGrid> {
        let base = SubsidyGame::new(system.clone(), 0.0, 0.0)
            .expect("p = q = 0 is always a valid parameterization");
        self.solve_game(&base, rows, cols)
    }

    /// [`ContinuationSolver::solve`] into a reusable [`EqGrid`].
    pub fn solve_into(
        &self,
        system: &System,
        rows: &[f64],
        cols: &[f64],
        out: &mut EqGrid,
    ) -> NumResult<()> {
        let base = SubsidyGame::new(system.clone(), 0.0, 0.0)
            .expect("p = q = 0 is always a valid parameterization");
        self.solve_game_into(&base, rows, cols, out)
    }

    /// Solves the full grid over a base game: the two axes sweep their
    /// parameters, everything else (price, cap, capacity, profitabilities,
    /// clamping convention) keeps the base game's values.
    pub fn solve_game(&self, base: &SubsidyGame, rows: &[f64], cols: &[f64]) -> NumResult<EqGrid> {
        let mut out = EqGrid::empty();
        self.solve_game_into(base, rows, cols, &mut out)?;
        Ok(out)
    }

    /// [`ContinuationSolver::solve_game`] into a reusable [`EqGrid`],
    /// fanning column blocks across [`ContinuationSolver::threads`]
    /// workers (one [`GridContext`] each). Bit-identical to the sequential
    /// engine for any thread count.
    pub fn solve_game_into(
        &self,
        base: &SubsidyGame,
        rows: &[f64],
        cols: &[f64],
        out: &mut EqGrid,
    ) -> NumResult<()> {
        self.validate_grid(base.n(), rows, cols)?;
        out.prepare(self.row_axis, self.col_axis, rows, cols, base.n());
        let mut tasks: Vec<BlockTask<'_>> = block_tasks(out, self.block.max(1), cols).collect();
        if self.threads <= 1 || tasks.len() <= 1 {
            let mut ctx = GridContext::for_game(base);
            for task in &mut tasks {
                self.solve_block(rows, &mut ctx, task)?;
            }
            return Ok(());
        }
        let workers = self.threads.min(tasks.len());
        let chunk = tasks.len().div_ceil(workers);
        let mut results: Vec<NumResult<()>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for slab in tasks.chunks_mut(chunk) {
                handles.push(scope.spawn(move || {
                    let mut ctx = GridContext::for_game(base);
                    for task in slab.iter_mut() {
                        self.solve_block(rows, &mut ctx, task)?;
                    }
                    Ok(())
                }));
            }
            results =
                handles.into_iter().map(|h| h.join().expect("grid worker panicked")).collect();
        });
        results.into_iter().collect()
    }

    /// The sequential, allocation-free engine: solves the whole grid
    /// through one caller-owned context into `out`. After a first call of
    /// a given shape (warm-up), repeated calls perform zero heap
    /// allocation — the contract `tests/alloc_free.rs` pins on both the
    /// `(q, p)` panel and a µ-axis sweep (tangent mode excepted). Results
    /// are bit-identical to [`ContinuationSolver::solve_game_into`] at any
    /// thread count.
    pub fn solve_seq_into(
        &self,
        ctx: &mut GridContext,
        rows: &[f64],
        cols: &[f64],
        out: &mut EqGrid,
    ) -> NumResult<()> {
        self.validate_grid(ctx.game.n(), rows, cols)?;
        out.prepare(self.row_axis, self.col_axis, rows, cols, ctx.game.n());
        for mut task in block_tasks(out, self.block.max(1), cols) {
            self.solve_block(rows, ctx, &mut task)?;
        }
        Ok(())
    }

    /// Adaptive refinement near the revenue peak: solves the grid, then
    /// repeatedly (up to `levels` times) inserts column midpoints around
    /// the column with the highest revenue anywhere in the grid and
    /// re-solves, so the peak the paper's Figure 4/7 story revolves around
    /// is resolved finer than the base grid without densifying everything.
    /// Each level re-runs the (warm, continuation-driven) grid solve on
    /// the refined column list.
    pub fn solve_refined(
        &self,
        base: &SubsidyGame,
        rows: &[f64],
        cols: &[f64],
        levels: usize,
    ) -> NumResult<EqGrid> {
        let mut cols = cols.to_vec();
        let mut grid = self.solve_game(base, rows, &cols)?;
        for _ in 0..levels {
            let Some(c_star) = peak_revenue_col(&grid) else { break };
            let mut refined = cols.clone();
            let mut inserted = false;
            if c_star + 1 < cols.len() && cols[c_star + 1] - cols[c_star] > 1e-9 {
                refined.push(0.5 * (cols[c_star] + cols[c_star + 1]));
                inserted = true;
            }
            if c_star > 0 && cols[c_star] - cols[c_star - 1] > 1e-9 {
                refined.push(0.5 * (cols[c_star - 1] + cols[c_star]));
                inserted = true;
            }
            if !inserted {
                break;
            }
            refined.sort_by(f64::total_cmp);
            refined.dedup();
            cols = refined;
            grid = self.solve_game(base, rows, &cols)?;
        }
        Ok(grid)
    }

    /// Solves one column block: column-axis continuation along the first
    /// processed row (tangent-predicted when configured), row seeding for
    /// every later row, cold fallback on non-convergence.
    fn solve_block(
        &self,
        rows: &[f64],
        ctx: &mut GridContext,
        blk: &mut BlockTask<'_>,
    ) -> NumResult<()> {
        let n_rows = rows.len();
        let n = ctx.game.n();
        ctx.seed.resize(n, 0.0);
        for step in 0..n_rows {
            let r = if self.reverse_rows { n_rows - 1 - step } else { step };
            self.row_axis.apply(&mut ctx.game, rows[r])?;
            let mut have_tangent = false;
            for (cl, &cv) in blk.cols.iter().enumerate() {
                self.col_axis.apply(&mut ctx.game, cv)?;
                let o = cl * n_rows + r;
                // This point wanted a tangent start (tangent mode, on the
                // continuation row, not the block-start column) but the
                // preceding equilibrium had no derivative — the graceful
                // degradation the mark below surfaces.
                let fell_back = self.tangent && step == 0 && cl > 0 && !have_tangent;
                let (stats, cold) = if step == 0 {
                    if cl == 0 {
                        (self.solve_cold(ctx)?, true)
                    } else if have_tangent {
                        // Predictor-corrector: first-order Theorem 6 step
                        // from the previous column's equilibrium.
                        let dtheta = cv - blk.cols[cl - 1];
                        let tangent = std::mem::take(&mut ctx.tangent);
                        let result = self
                            .solve_seeded(ctx, WarmStart::Tangent { ds_dtheta: &tangent, dtheta });
                        ctx.tangent = tangent;
                        result?
                    } else {
                        // Column-axis continuation: the workspace still
                        // holds the previous column's equilibrium.
                        self.solve_seeded(ctx, WarmStart::Previous)?
                    }
                } else {
                    // Row seeding: start from the adjacent row's solution
                    // at this column, re-clamped into the new box.
                    let prev = if self.reverse_rows { r + 1 } else { r - 1 };
                    let po = (cl * n_rows + prev) * n;
                    for i in 0..n {
                        ctx.seed[i] = blk.subsidies[po + i].clamp(0.0, ctx.game.effective_cap(i));
                    }
                    let seed = std::mem::take(&mut ctx.seed);
                    let result = self.solve_seeded(ctx, WarmStart::Profile(&seed));
                    ctx.seed = seed;
                    result?
                };
                if self.tangent && step == 0 && cl + 1 < blk.cols.len() {
                    // Tangent for the next column, taken at this point's
                    // equilibrium. A degenerate equilibrium (no derivative)
                    // simply degrades the next start to Previous.
                    have_tangent = match Sensitivity::directional(
                        &mut ctx.game,
                        ctx.ws.subsidies(),
                        self.col_axis,
                    ) {
                        Ok(ds) => {
                            ctx.tangent.clear();
                            ctx.tangent.extend_from_slice(&ds);
                            true
                        }
                        Err(_) => false,
                    };
                }
                blk.subsidies[o * n..(o + 1) * n].copy_from_slice(ctx.ws.subsidies());
                let state = ctx.ws.state();
                blk.m[o * n..(o + 1) * n].copy_from_slice(&state.m);
                blk.theta[o * n..(o + 1) * n].copy_from_slice(&state.theta_i);
                blk.utilities[o * n..(o + 1) * n].copy_from_slice(ctx.ws.utilities());
                blk.phi[o] = state.phi;
                blk.revenue[o] = ctx.game.price() * state.theta();
                blk.welfare[o] = welfare(&ctx.game, state);
                blk.iterations[o] = stats.iterations as u32;
                blk.cold[o] = cold;
                blk.tangent_fallback[o] = fell_back;
            }
        }
        Ok(())
    }

    /// A continuation-seeded solve with automatic cold fallback.
    fn solve_seeded(
        &self,
        ctx: &mut GridContext,
        start: WarmStart<'_>,
    ) -> NumResult<(SolveStats, bool)> {
        match self.solver.solve_into(&ctx.game, start, &mut ctx.ws) {
            Ok(stats) => Ok((stats, false)),
            Err(_) => Ok((self.solve_cold(ctx)?, true)),
        }
    }

    /// A cold solve; if the continuation solver itself fails from zero,
    /// retry once on the robust grid-scan best response.
    fn solve_cold(&self, ctx: &mut GridContext) -> NumResult<SolveStats> {
        match self.solver.solve_into(&ctx.game, WarmStart::Zero, &mut ctx.ws) {
            Ok(stats) => Ok(stats),
            Err(err) => {
                if !self.solver.threshold_br {
                    return Err(err);
                }
                self.solver.with_threshold_br(false).solve_into(
                    &ctx.game,
                    WarmStart::Zero,
                    &mut ctx.ws,
                )
            }
        }
    }

    /// Validates the axis pair and every grid value against its axis'
    /// domain (`p, q, v_i ≥ 0`; `µ > 0`; provider indices in range).
    fn validate_grid(&self, n: usize, rows: &[f64], cols: &[f64]) -> NumResult<()> {
        if self.row_axis == self.col_axis {
            return Err(NumError::Domain {
                what: "continuation axes must be distinct parameters",
                value: f64::NAN,
            });
        }
        for (axis, values) in [(self.row_axis, rows), (self.col_axis, cols)] {
            if let Axis::Profitability(i) = axis {
                if i >= n {
                    return Err(NumError::DimensionMismatch { expected: n, actual: i });
                }
            }
            for &v in values {
                let ok = match axis {
                    Axis::Mu => v > 0.0 && v.is_finite(),
                    _ => v >= 0.0 && v.is_finite(),
                };
                if !ok {
                    return Err(NumError::Domain {
                        what: match axis {
                            Axis::Price => "grid price must be non-negative",
                            Axis::Cap => "grid cap must be non-negative",
                            Axis::Mu => "grid capacity must be positive",
                            Axis::Profitability(_) => "grid profitability must be non-negative",
                        },
                        value: v,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Index of the column holding the grid's highest revenue (maximum over
/// rows), or `None` for an empty grid.
fn peak_revenue_col(grid: &EqGrid) -> Option<usize> {
    let (mut best_c, mut best_rev) = (None, f64::NEG_INFINITY);
    for c in 0..grid.n_cols() {
        for r in 0..grid.n_rows() {
            let rev = grid.point(r, c).revenue;
            if rev > best_rev {
                best_rev = rev;
                best_c = Some(c);
            }
        }
    }
    best_c
}

/// Lazily splits the grid's output buffers into per-block mutable slabs
/// (the column-major layout makes every block contiguous in every
/// buffer). An iterator rather than a `Vec` so the sequential engine can
/// walk blocks without allocating — `tests/alloc_free.rs` counts on it.
fn block_tasks<'a>(
    out: &'a mut EqGrid,
    block: usize,
    cols: &'a [f64],
) -> impl Iterator<Item = BlockTask<'a>> {
    let rows = out.rows.len();
    let n = out.n;
    let per_cp = (block * rows * n).max(1);
    let per_pt = (block * rows).max(1);
    cols.chunks(block)
        .zip(out.subsidies.chunks_mut(per_cp))
        .zip(out.m.chunks_mut(per_cp))
        .zip(out.theta.chunks_mut(per_cp))
        .zip(out.utilities.chunks_mut(per_cp))
        .zip(out.phi.chunks_mut(per_pt))
        .zip(out.revenue.chunks_mut(per_pt))
        .zip(out.welfare.chunks_mut(per_pt))
        .zip(out.iterations.chunks_mut(per_pt))
        .zip(out.cold.chunks_mut(per_pt))
        .zip(out.tangent_fallback.chunks_mut(per_pt))
        .map(
            |(
                (
                    (
                        (((((((cols, subsidies), m), theta), utilities), phi), revenue), welfare),
                        iterations,
                    ),
                    cold,
                ),
                tangent_fallback,
            )| {
                BlockTask {
                    cols,
                    subsidies,
                    m,
                    theta,
                    utilities,
                    phi,
                    revenue,
                    welfare,
                    iterations,
                    cold,
                    tangent_fallback,
                }
            },
        )
}

// ---------------------------------------------------------------------------
// One-sided (no-subsidy) axis sweeps
// ---------------------------------------------------------------------------

/// One point of a one-sided axis sweep: the §3.2 market (no subsidies)
/// evaluated at one parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct StatePoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The solved congestion state.
    pub state: SystemState,
    /// ISP revenue `R = p θ`.
    pub revenue: f64,
    /// CP utilities `U_i = v_i θ_i` (no subsidies in the one-sided model).
    pub utilities: Vec<f64>,
}

/// Sweeps the *one-sided* market (§3.2: uniform price, no subsidies) along
/// an axis — the engine behind Figures 4 and 5 and the one-sided leg of
/// the µ sweeps. Supports [`Axis::Price`] (the swept value is the uniform
/// price) and [`Axis::Mu`] (the capacity is reparameterized in place via
/// [`System::set_mu`] at the fixed `price`); the subsidy-game axes have no
/// one-sided meaning and are rejected.
///
/// The system is cloned once and every point solves through one reused
/// scratch/state/price buffer — no per-point `System` rebuilds, and values
/// are bit-identical to the historical per-point
/// `state_at_uniform_price` construction (pinned by unit tests here and
/// by the figure-series goldens).
pub fn one_sided_sweep(
    system: &System,
    price: f64,
    axis: Axis,
    values: &[f64],
) -> NumResult<Vec<StatePoint>> {
    match axis {
        Axis::Price | Axis::Mu => {}
        _ => {
            return Err(NumError::Domain {
                what: "one-sided sweeps support the price and capacity axes only",
                value: f64::NAN,
            })
        }
    }
    let mut sys = system.clone();
    let mut scratch = sys.make_scratch();
    let mut state = SystemState::empty();
    let mut t = vec![0.0; sys.n()];
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        let p = match axis {
            Axis::Price => v,
            _ => {
                sys.set_mu(v)?;
                price
            }
        };
        t.fill(p);
        sys.state_at_prices_into(&t, &mut scratch, &mut state)?;
        let revenue = p * state.theta();
        let utilities =
            sys.cps().iter().zip(&state.theta_i).map(|(cp, &th)| cp.profitability() * th).collect();
        out.push(StatePoint { value: v, state: state.clone(), revenue, utilities });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// One-dimensional equilibrium sweeps
// ---------------------------------------------------------------------------

/// One solved point of an equilibrium axis sweep.
#[derive(Debug, Clone)]
pub struct AxisSweepPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// The Nash equilibrium solved at this point.
    pub equilibrium: subcomp_core::nash::NashSolution,
}

/// Sweeps a single axis with warm-started Nash solves: the base game is
/// cloned once, each point reparameterizes it in place through the axis
/// setter and solves through one reused [`SolveWorkspace`]
/// ([`WarmStart::Previous`] after the first point), so only the returned
/// solutions allocate. Errors propagate (no cold fallback) — this is the
/// strict engine `equilibrium_price_sweep` routes through, bit-identical
/// to its historical clone-per-point loop on the price axis.
pub fn axis_equilibrium_sweep(
    base: &SubsidyGame,
    axis: Axis,
    values: &[f64],
    solver: &NashSolver,
) -> NumResult<Vec<AxisSweepPoint>> {
    let mut out = Vec::with_capacity(values.len());
    let mut game = base.clone();
    let mut ws = SolveWorkspace::for_game(&game);
    let mut warm = false;
    for &v in values {
        axis.apply(&mut game, v)?;
        let start = if warm { WarmStart::Previous } else { WarmStart::Zero };
        let stats = solver.solve_into(&game, start, &mut ws)?;
        warm = true;
        out.push(AxisSweepPoint { value: v, equilibrium: ws.solution(stats) });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;
    use subcomp_model::pricing::OneSidedMarket;

    fn small_grid() -> (Vec<f64>, Vec<f64>) {
        (vec![0.0, 0.6, 1.2], vec![0.2, 0.5, 0.8, 1.1, 1.5])
    }

    #[test]
    fn grid_matches_independent_cold_solves() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let grid = GridSolver::default().solve(&sys, &qs, &prices).unwrap();
        assert_eq!(grid.n_rows(), 3);
        assert_eq!(grid.n_cols(), 5);
        assert_eq!(grid.n_cps(), 8);
        assert_eq!(grid.row_axis(), Axis::Cap);
        assert_eq!(grid.col_axis(), Axis::Price);
        let solver = NashSolver::default().with_tol(1e-8);
        for (r, &q) in qs.iter().enumerate() {
            for (c, &p) in prices.iter().enumerate() {
                let game = SubsidyGame::new(sys.clone(), p, q).unwrap();
                let cold = solver.solve(&game).unwrap();
                let pt = grid.point(r, c);
                assert_eq!(pt.row, q);
                assert_eq!(pt.col, p);
                for i in 0..8 {
                    assert!(
                        (pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6,
                        "(q={q}, p={p}) CP {i}: grid {} vs cold {}",
                        pt.subsidies[i],
                        cold.subsidies[i]
                    );
                }
                assert!((pt.phi - cold.state.phi).abs() < 1e-6);
                assert!((pt.revenue - cold.isp_revenue(&game)).abs() < 1e-6);
                assert!((pt.welfare - cold.welfare(&game)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let base = GridSolver::default().with_block(2);
        let one = base.clone().with_threads(1).solve(&sys, &qs, &prices).unwrap();
        let four = base.with_threads(4).solve(&sys, &qs, &prices).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn sequential_engine_matches_parallel() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let solver = GridSolver::default().with_block(2);
        let parallel = solver.clone().with_threads(3).solve(&sys, &qs, &prices).unwrap();
        let mut ctx = GridContext::new(&sys);
        let mut seq = EqGrid::empty();
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut seq).unwrap();
        assert_eq!(parallel, seq);
        // And the context + buffer are reusable: a second run reproduces
        // the same grid byte for byte.
        let mut again = EqGrid::empty();
        solver.solve_seq_into(&mut ctx, &qs, &prices, &mut again).unwrap();
        assert_eq!(seq, again);
    }

    #[test]
    fn reverse_row_order_agrees_within_tolerance() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let fwd = GridSolver::default().solve(&sys, &qs, &prices).unwrap();
        let rev = GridSolver::default().with_reverse_rows(true).solve(&sys, &qs, &prices).unwrap();
        for r in 0..qs.len() {
            for c in 0..prices.len() {
                let (a, b) = (fwd.point(r, c), rev.point(r, c));
                for i in 0..8 {
                    assert!(
                        (a.subsidies[i] - b.subsidies[i]).abs() < 1e-6,
                        "(r={r}, c={c}) CP {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn continuation_solves_mostly_warm() {
        let sys = section5_system();
        let (qs, prices) = small_grid();
        let grid = GridSolver::default().with_block(8).solve(&sys, &qs, &prices).unwrap();
        // One block => exactly one planned cold solve; fallbacks would
        // push the count up (and flag a continuation regression).
        assert_eq!(grid.cold_solves(), 1, "continuation fell back to cold solves");
        assert!(grid.point(0, 0).cold);
        assert!(!grid.point(2, 4).cold);
        assert!(grid.total_sweeps() > 0);
    }

    #[test]
    fn zero_cap_row_pins_subsidies() {
        let sys = section5_system();
        let grid = GridSolver::default().solve(&sys, &[0.0, 1.0], &[0.4, 0.9]).unwrap();
        for c in 0..2 {
            assert!(grid.point(0, c).subsidies.iter().all(|&s| s == 0.0));
            assert!(grid.point(1, c).subsidies.iter().any(|&s| s > 0.0));
        }
    }

    #[test]
    fn empty_and_invalid_grids() {
        let sys = section5_system();
        let grid = GridSolver::default().solve(&sys, &[], &[0.5]).unwrap();
        assert_eq!(grid.n_rows(), 0);
        let grid = GridSolver::default().solve(&sys, &[0.5], &[]).unwrap();
        assert_eq!(grid.n_cols(), 0);
        assert!(GridSolver::default().solve(&sys, &[-0.1], &[0.5]).is_err());
        assert!(GridSolver::default().solve(&sys, &[0.5], &[f64::NAN]).is_err());
    }

    #[test]
    fn axis_validation() {
        let sys = section5_system();
        let base = SubsidyGame::new(sys.clone(), 0.6, 0.8).unwrap();
        // Same axis twice is rejected.
        let dup = ContinuationSolver::over(Axis::Mu, Axis::Mu);
        assert!(dup.solve_game(&base, &[1.0], &[0.5]).is_err());
        // Axis domains are enforced: µ must be positive…
        let mu = ContinuationSolver::over(Axis::Cap, Axis::Mu);
        assert!(mu.solve_game(&base, &[0.8], &[0.0]).is_err());
        // …and profitability indices in range.
        let v = ContinuationSolver::over(Axis::Cap, Axis::Profitability(99));
        assert!(v.solve_game(&base, &[0.8], &[0.5]).is_err());
    }

    #[test]
    fn mu_axis_sweep_matches_rebuilt_cold_solves() {
        let sys = section5_system();
        let base = SubsidyGame::new(sys.clone(), 0.6, 0.8).unwrap();
        let mus = [0.5, 1.0, 2.0];
        let grid =
            ContinuationSolver::over(Axis::Cap, Axis::Mu).solve_game(&base, &[0.8], &mus).unwrap();
        assert_eq!(grid.n_rows(), 1);
        assert_eq!(grid.n_cols(), 3);
        let solver = NashSolver::default().with_tol(1e-8);
        for (c, &mu) in mus.iter().enumerate() {
            let game = SubsidyGame::new(sys.with_capacity(mu).unwrap(), 0.6, 0.8).unwrap();
            let cold = solver.solve(&game).unwrap();
            let pt = grid.point(0, c);
            assert_eq!(pt.col, mu);
            for i in 0..8 {
                assert!((pt.subsidies[i] - cold.subsidies[i]).abs() < 1e-6, "mu = {mu}, CP {i}");
            }
            assert!((pt.phi - cold.state.phi).abs() < 1e-6);
            assert!((pt.revenue - cold.isp_revenue(&game)).abs() < 1e-6);
        }
        // More capacity, more equilibrium throughput (Theorem 1 direction).
        assert!(grid.point(0, 2).theta.iter().sum::<f64>() > grid.point(0, 0).theta.iter().sum());
    }

    #[test]
    fn tangent_predictor_matches_previous_continuation() {
        let sys = section5_system();
        let base = SubsidyGame::new(sys, 0.6, 0.8).unwrap();
        let mus = [0.8, 1.0, 1.25, 1.6];
        let solver = ContinuationSolver::over(Axis::Cap, Axis::Mu);
        let previous = solver.solve_game(&base, &[0.8], &mus).unwrap();
        let tangent = solver.clone().with_tangent(true).solve_game(&base, &[0.8], &mus).unwrap();
        for c in 0..mus.len() {
            let (a, b) = (previous.point(0, c), tangent.point(0, c));
            for i in 0..8 {
                assert!((a.subsidies[i] - b.subsidies[i]).abs() < 1e-6, "mu = {}, CP {i}", mus[c]);
            }
        }
        assert_eq!(tangent.cold_solves(), 1, "the tangent path must not fall back cold");
    }

    #[test]
    fn tangent_sweep_degrades_gracefully_at_a_degenerate_equilibrium() {
        // A degenerate equilibrium *mid-sweep*: a monopolist whose cap is
        // set exactly at its interior optimum at µ = 1 (the recipe the
        // sensitivity tests use — the pinned provider has u ≈ 0, so
        // `Sensitivity::directional` refuses to differentiate there). The
        // tangent-mode sweep must NOT abort the ladder: it marks the next
        // point as a tangent fallback, seeds it from the previous iterate,
        // and completes the sweep in full.
        use subcomp_model::aggregation::{build_system, ExpCpSpec};
        let sys = build_system(&[ExpCpSpec::unit(8.0, 2.0, 1.0)], 1.0).unwrap();
        let free = SubsidyGame::new(sys.clone(), 1.0, 2.0).unwrap();
        let s_star = NashSolver::default().with_tol(1e-10).solve(&free).unwrap().subsidies[0];
        let base = SubsidyGame::new(sys, 1.0, s_star).unwrap();
        let mus = [0.9, 0.95, 1.0, 1.05, 1.1];
        let solver = ContinuationSolver::over(Axis::Cap, Axis::Mu)
            .with_solver(NashSolver::default().with_tol(1e-10))
            .with_block(8);
        let tangent = solver.clone().with_tangent(true).solve_game(&base, &[s_star], &mus).unwrap();
        // The ladder is complete and finite at every µ.
        for c in 0..mus.len() {
            let pt = tangent.point(0, c);
            assert!(pt.phi.is_finite() && pt.subsidies[0].is_finite(), "µ = {}", mus[c]);
        }
        // The point after µ = 1 wanted a tangent but had no derivative.
        assert!(tangent.point(0, 3).tangent_fallback, "fallback at µ = 1.05 must be marked");
        assert!(tangent.tangent_fallbacks() >= 1);
        assert!(!tangent.point(0, 1).tangent_fallback, "regular points keep their tangent");
        // Degradation, not divergence: the marked ladder agrees with the
        // plain previous-iterate sweep.
        let previous = solver.solve_game(&base, &[s_star], &mus).unwrap();
        assert_eq!(previous.tangent_fallbacks(), 0, "marks exist only in tangent mode");
        for c in 0..mus.len() {
            let (a, b) = (previous.point(0, c), tangent.point(0, c));
            assert!((a.subsidies[0] - b.subsidies[0]).abs() < 1e-6, "µ = {}", mus[c]);
            assert!((a.phi - b.phi).abs() < 1e-6);
        }
    }

    #[test]
    fn refined_grid_keeps_base_columns_and_tightens_the_peak() {
        let sys = section5_system();
        let base = SubsidyGame::new(sys, 0.0, 0.5).unwrap();
        let cols: Vec<f64> = (0..6).map(|k| 0.2 + 0.3 * k as f64).collect();
        let solver = ContinuationSolver::default();
        let coarse = solver.solve_game(&base, &[0.5], &cols).unwrap();
        let refined = solver.solve_refined(&base, &[0.5], &cols, 2).unwrap();
        assert!(refined.n_cols() > coarse.n_cols(), "refinement must add columns");
        for &c in &cols {
            assert!(refined.cols().contains(&c), "base column {c} must survive refinement");
        }
        let peak = |g: &EqGrid| {
            (0..g.n_cols()).map(|c| g.point(0, c).revenue).fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(peak(&refined) >= peak(&coarse) - 1e-12);
    }

    #[test]
    fn one_sided_price_sweep_is_bit_identical_to_market_sweep() {
        let sys = crate::scenarios::section3_system();
        let prices: Vec<f64> = (0..8).map(|k| 0.3 * k as f64).collect();
        let market = OneSidedMarket::new(&sys);
        let reference = market.sweep(&prices).unwrap();
        let swept = one_sided_sweep(&sys, 0.0, Axis::Price, &prices).unwrap();
        for (a, b) in reference.iter().zip(&swept) {
            assert_eq!(a.p, b.value);
            assert_eq!(a.state.phi.to_bits(), b.state.phi.to_bits());
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
            assert_eq!(a.state.theta_i, b.state.theta_i);
            assert_eq!(a.utilities, b.utilities);
        }
    }

    #[test]
    fn one_sided_mu_sweep_reparameterizes_in_place() {
        let sys = crate::scenarios::section3_system();
        let mus = [0.5, 1.0, 2.0];
        let swept = one_sided_sweep(&sys, 0.4, Axis::Mu, &mus).unwrap();
        for (pt, &mu) in swept.iter().zip(&mus) {
            let reference = sys.with_capacity(mu).unwrap().state_at_uniform_price(0.4).unwrap();
            assert_eq!(pt.value, mu);
            assert_eq!(pt.state.phi.to_bits(), reference.phi.to_bits());
        }
        // Theorem 1: more capacity, more throughput.
        assert!(swept[2].state.theta() > swept[0].state.theta());
        // The subsidy axes are meaningless one-sided.
        assert!(one_sided_sweep(&sys, 0.4, Axis::Cap, &mus).is_err());
        assert!(one_sided_sweep(&sys, 0.4, Axis::Profitability(0), &mus).is_err());
    }

    #[test]
    fn axis_equilibrium_sweep_over_mu_matches_cold() {
        let sys = section5_system();
        let base = SubsidyGame::new(sys.clone(), 0.6, 0.8).unwrap();
        let solver = NashSolver::default().with_tol(1e-8);
        let mus = [0.8, 1.2];
        let sweep = axis_equilibrium_sweep(&base, Axis::Mu, &mus, &solver).unwrap();
        for pt in &sweep {
            let game = SubsidyGame::new(sys.with_capacity(pt.value).unwrap(), 0.6, 0.8).unwrap();
            let cold = solver.solve(&game).unwrap();
            for i in 0..8 {
                assert!((pt.equilibrium.subsidies[i] - cold.subsidies[i]).abs() < 1e-6);
            }
        }
    }
}
