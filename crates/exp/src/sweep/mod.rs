//! Parameter-sweep and batch-solve engine.
//!
//! Four workhorses: [`parallel_map`] fans independent work items across OS
//! threads (`std::thread::scope`, no dependency), [`parallel_map_with`]
//! additionally gives each worker a persistent context (the hook the
//! allocation-free [`BatchSolver`] hangs one [`SolveWorkspace`] per worker
//! on), [`parallel_map_mut`] is the `&mut` sibling for owned, disjoint
//! chunks that are mutated in place (the adoption engine's block fan-out),
//! and [`equilibrium_price_sweep`] walks a price grid with warm-started
//! Nash solves — consecutive equilibria are close (Theorem 6
//! differentiability), so warm starts cut sweep time by roughly the
//! iteration count ratio.
//!
//! [`BatchSolver`] is the scale layer the `solve_farm` binary builds on:
//! it amortizes one workspace per worker across the whole batch and
//! warm-starts consecutive items inside fixed-size blocks, so results are
//! bit-identical for *any* thread count while the solver loop itself
//! performs zero heap allocation after warm-up.

pub mod continuation;
pub mod grid;

pub use continuation::{
    axis_equilibrium_sweep, one_sided_sweep, Axis, AxisSweepPoint, ContinuationSolver, EqGrid,
    EqPointView, GridContext, GridSolver, StatePoint,
};

use subcomp_core::game::SubsidyGame;
use subcomp_core::lane::{LaneGame, LaneSolver, LaneWorkspace};
use subcomp_core::nash::{NashSolution, NashSolver, SolveStats, WarmStart};
use subcomp_core::workspace::SolveWorkspace;
use subcomp_model::system::System;
use subcomp_num::NumResult;

/// Maps `f` over `items` on up to `threads` OS threads, preserving order.
///
/// Falls back to a sequential map when `threads <= 1` (including 0) or
/// there is at most a single item. `f` must be `Sync` (it is shared across
/// threads by reference).
///
/// # Panics
///
/// If `f` panics for any item, the panic propagates to the caller after
/// all in-flight workers finish their chunks (`std::thread::scope` joins
/// every spawned thread before unwinding) — no result is silently
/// dropped, and no thread is leaked.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (slab, slot) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, cell) in slab.iter().zip(slot.iter_mut()) {
                    *cell = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|c| c.expect("worker filled every slot")).collect()
}

/// [`parallel_map`] with a per-worker context: each worker thread calls
/// `init` exactly once and threads the resulting context mutably through
/// every item it processes. This is how batch solvers amortize expensive
/// per-worker state (scratch buffers, workspaces) across a fan-out without
/// sharing or locking.
///
/// Order is preserved. Falls back to a single context and a sequential map
/// when `threads <= 1` (including 0) or there is at most one item.
///
/// # Panics
///
/// As with [`parallel_map`], a panic in `init` or `f` propagates to the
/// caller after all in-flight workers finish (`std::thread::scope` joins
/// every spawned thread before unwinding).
pub fn parallel_map_with<T, U, C, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut ctx = init();
        return items.iter().map(|item| f(&mut ctx, item)).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (slab, slot) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                let mut ctx = init();
                for (item, cell) in slab.iter().zip(slot.iter_mut()) {
                    *cell = Some(f(&mut ctx, item));
                }
            });
        }
    });
    out.into_iter().map(|c| c.expect("worker filled every slot")).collect()
}

/// [`parallel_map_with`] over *mutable* items: each worker thread calls
/// `init` once and applies `f` in place to every item of its contiguous
/// chunk. Items are disjoint `&mut` borrows (via `chunks_mut`), so no
/// sharing or locking is involved — the natural driver for engines that
/// own their per-chunk state, like `sim::adoption`'s blocks.
///
/// Order is preserved (results align with `items`). Falls back to a
/// single context and a sequential pass when `threads <= 1` (including 0)
/// or there is at most one item. Because each item is mutated by exactly
/// one worker and `f` receives items in list order within a chunk, the
/// mutation outcome is **independent of the thread count** whenever `f`
/// itself is a pure function of the item (plus its per-worker context) —
/// the property the adoption determinism tier pins.
///
/// # Panics
///
/// As with [`parallel_map`], a panic in `init` or `f` propagates to the
/// caller after all in-flight workers finish (`std::thread::scope` joins
/// every spawned thread before unwinding).
pub fn parallel_map_mut<T, U, C, I, F>(items: &mut [T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut ctx = init();
        return items.iter_mut().map(|item| f(&mut ctx, item)).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (slab, slot) in items.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                let mut ctx = init();
                for (item, cell) in slab.iter_mut().zip(slot.iter_mut()) {
                    *cell = Some(f(&mut ctx, item));
                }
            });
        }
    });
    out.into_iter().map(|c| c.expect("worker filled every slot")).collect()
}

/// Batched Nash solving on a fleet of reusable workspaces.
///
/// Splits the item list into fixed-size [`BatchSolver::block`]s; each block
/// is one warm-start chain (first item solves cold from `s = 0`, later
/// items start from the previous equilibrium re-clamped into their game's
/// box). Blocks — not items — are what [`parallel_map_with`] distributes,
/// and every worker reuses a single [`SolveWorkspace`] across all blocks it
/// processes, so after warm-up the solver loop allocates nothing.
///
/// Because the chain structure depends only on the block size, results are
/// **bit-identical for any thread count** — the property the batch
/// determinism suite pins.
#[derive(Debug, Clone)]
pub struct BatchSolver {
    /// The underlying Nash solver configuration.
    pub solver: NashSolver,
    /// Worker threads for block fan-out (`<= 1` runs sequentially).
    pub threads: usize,
    /// Items per warm-start chain. Also the unit of parallel distribution;
    /// shorter blocks expose more parallelism, longer blocks warm-start
    /// more aggressively. Minimum 1.
    pub block: usize,
    /// Warm-start consecutive items within a block (`false` solves every
    /// item cold — the reference the equivalence tests compare against).
    pub warm_start: bool,
    /// Lane-block size `K` for the SoA lane engine (`0` = scalar mode,
    /// the default). In lane mode, games of equal provider count are
    /// grouped in encounter order and chunked into [`LaneGame`]s of up to
    /// `K` lanes, each solved in lockstep by [`LaneSolver`] (threshold
    /// best responses, cold start — `warm_start` is ignored). Lane
    /// assignment depends only on the item list and `K`, and lanes never
    /// read each other's state, so per-game results are bit-identical
    /// across thread counts *and* lane-block sizes; games the lane engine
    /// cannot pack (non-exponential families, clamped pricing) fall back
    /// to cold scalar solves.
    pub lanes: usize,
}

impl Default for BatchSolver {
    fn default() -> Self {
        BatchSolver {
            solver: NashSolver::default(),
            threads: 1,
            block: 32,
            warm_start: true,
            lanes: 0,
        }
    }
}

impl BatchSolver {
    /// Returns a copy fanning blocks across `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different warm-start block size (minimum 1).
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block.max(1);
        self
    }

    /// Returns a copy with warm starting disabled (every solve cold).
    pub fn cold(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Returns a copy routing through the SoA lane engine with lane
    /// blocks of up to `lanes` games (`0` restores scalar mode).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Solves one game per item: `build` yields the game — owned (the
    /// only per-item allocation site) or borrowed straight from the item —
    /// and `summarize` reduces the solved workspace to whatever the caller
    /// wants to keep; it must copy out anything it needs, since the
    /// workspace is reused for the next item. Order is preserved; per-item
    /// errors are reported in place and do not poison the rest of the
    /// batch (a failed solve simply breaks the warm chain — the next item
    /// starts cold).
    pub fn run<'a, T, R, B, G, S>(
        &self,
        items: &'a [T],
        build: G,
        summarize: S,
    ) -> Vec<NumResult<R>>
    where
        T: Sync,
        R: Send,
        B: std::borrow::Borrow<SubsidyGame> + Sync,
        G: Fn(&'a T) -> NumResult<B> + Sync,
        S: Fn(&SubsidyGame, &SolveWorkspace, SolveStats) -> R + Sync,
    {
        if self.lanes > 0 {
            return self.run_lanes(items, build, summarize);
        }
        let block = self.block.max(1);
        let blocks: Vec<&[T]> = items.chunks(block).collect();
        let nested = parallel_map_with(
            &blocks,
            self.threads,
            SolveWorkspace::new,
            |ws: &mut SolveWorkspace, chunk: &&[T]| {
                let mut results = Vec::with_capacity(chunk.len());
                let mut have_warm = false;
                for item in chunk.iter() {
                    let result = build(item).and_then(|game| {
                        let game = game.borrow();
                        let start = if self.warm_start && have_warm {
                            WarmStart::Previous
                        } else {
                            WarmStart::Zero
                        };
                        let stats = self.solver.solve_into(game, start, ws)?;
                        Ok(summarize(game, ws, stats))
                    });
                    have_warm = result.is_ok();
                    results.push(result);
                }
                results
            },
        );
        nested.into_iter().flatten().collect()
    }

    /// Convenience wrapper solving pre-built games into full
    /// [`NashSolution`]s (games are borrowed, never cloned).
    pub fn solve_games(&self, games: &[SubsidyGame]) -> Vec<NumResult<NashSolution>> {
        self.run(games, Ok, |_, ws, stats| ws.solution(stats))
    }

    /// The lane-mode body of [`BatchSolver::run`].
    ///
    /// Unlike scalar mode, the whole batch is materialized up front —
    /// lane grouping needs every game's shape before any solve starts
    /// (a few floats per provider per game; ~10 MB per million games).
    /// Work units are lane blocks plus the scalar stragglers, distributed
    /// through [`parallel_map_with`] with one `(LaneWorkspace,
    /// SolveWorkspace)` pair per worker; per-lane failures (probe errors,
    /// sweep exhaustion) surface as that game's `Err` without poisoning
    /// lane-mates. Lane solves mirror `self.solver`'s damping, tolerance,
    /// sweep budget and grid-fallback config but always use threshold
    /// best responses — the scalar engine they are bit-identical to is
    /// `self.solver.with_threshold_br(true)` from a cold start.
    fn run_lanes<'a, T, R, B, G, S>(
        &self,
        items: &'a [T],
        build: G,
        summarize: S,
    ) -> Vec<NumResult<R>>
    where
        T: Sync,
        R: Send,
        B: std::borrow::Borrow<SubsidyGame> + Sync,
        G: Fn(&'a T) -> NumResult<B> + Sync,
        S: Fn(&SubsidyGame, &SolveWorkspace, SolveStats) -> R + Sync,
    {
        enum Work {
            /// Indices of one lane block (equal provider counts).
            Lanes(Vec<usize>),
            /// Index of one game the lane engine cannot pack.
            Scalar(usize),
        }

        let k = self.lanes.max(1);
        let built: Vec<NumResult<B>> = items.iter().map(&build).collect();
        let game_at = |idx: usize| -> &SubsidyGame {
            built[idx].as_ref().expect("only Ok items are scheduled").borrow()
        };

        // Fixed work assignment: same-n games grouped in encounter order,
        // chunked into K-lane blocks. Depends only on the item list and K.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut work: Vec<Work> = Vec::new();
        for (idx, b) in built.iter().enumerate() {
            let Ok(game) = b else { continue };
            let game = game.borrow();
            if LaneGame::from_games(&[game]).is_some() {
                match groups.iter_mut().find(|(n, _)| *n == game.n()) {
                    Some((_, members)) => members.push(idx),
                    None => groups.push((game.n(), vec![idx])),
                }
            } else {
                work.push(Work::Scalar(idx));
            }
        }
        for (_, members) in &groups {
            for chunk in members.chunks(k) {
                work.push(Work::Lanes(chunk.to_vec()));
            }
        }

        let lane_solver = LaneSolver {
            damping: self.solver.damping,
            tol: self.solver.tol,
            max_sweeps: self.solver.max_sweeps,
            br: self.solver.br,
        };
        let scalar_solver = self.solver.with_threshold_br(true);
        let solved = parallel_map_with(
            &work,
            self.threads,
            || (LaneWorkspace::new(), SolveWorkspace::new()),
            |(lw, ws): &mut (LaneWorkspace, SolveWorkspace), unit: &Work| match unit {
                Work::Scalar(idx) => {
                    let game = game_at(*idx);
                    let result = scalar_solver
                        .solve_into(game, WarmStart::Zero, ws)
                        .map(|stats| summarize(game, ws, stats));
                    vec![(*idx, result)]
                }
                Work::Lanes(idxs) => {
                    let games: Vec<&SubsidyGame> = idxs.iter().map(|&i| game_at(i)).collect();
                    let lane_game = LaneGame::from_games(&games)
                        .expect("blocks are built from individually eligible same-n games");
                    lane_solver.solve_into(&lane_game, lw);
                    idxs.iter()
                        .enumerate()
                        .map(|(lane, &idx)| {
                            let result = lw.result_of(lane).map(|stats| {
                                lw.export_into(&lane_game, lane, ws);
                                summarize(games[lane], ws, stats)
                            });
                            (idx, result)
                        })
                        .collect()
                }
            },
        );

        // Scatter back to item order; build failures keep their slots.
        let mut out: Vec<Option<NumResult<R>>> = built
            .iter()
            .map(|b| match b {
                Err(e) => Some(Err(e.clone())),
                Ok(_) => None,
            })
            .collect();
        for (idx, result) in solved.into_iter().flatten() {
            out[idx] = Some(result);
        }
        out.into_iter().map(|slot| slot.expect("every item solved or errored")).collect()
    }
}

/// One solved point of a price sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The price at this point.
    pub p: f64,
    /// The equilibrium solved at `(p, q)`.
    pub equilibrium: NashSolution,
}

/// Sweeps a price grid at fixed cap `q`, warm-starting each solve from the
/// previous equilibrium.
///
/// A thin wrapper over the axis-generic
/// [`axis_equilibrium_sweep`](continuation::axis_equilibrium_sweep) on
/// [`Axis::Price`]: the system is cloned exactly once, each point
/// reparameterizes the same game through [`SubsidyGame::set_price`] and
/// solves through one reused [`SolveWorkspace`], so only the returned
/// [`NashSolution`]s allocate. Iterates (and therefore results) are
/// bit-identical to the historical clone-per-point implementation —
/// `WarmStart::Previous` re-clamps the prior equilibrium exactly as
/// `solve_from` did.
pub fn equilibrium_price_sweep(
    system: &System,
    q: f64,
    prices: &[f64],
    solver: &NashSolver,
) -> NumResult<Vec<SweepPoint>> {
    let base = SubsidyGame::new(system.clone(), 0.0, q)?;
    let points = axis_equilibrium_sweep(&base, Axis::Price, prices, solver)?;
    Ok(points
        .into_iter()
        .map(|pt| SweepPoint { p: pt.value, equilibrium: pt.equilibrium })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::section5_system;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i64> = (0..100).collect();
        let seq = parallel_map(&items, 1, |x| x * x);
        let par = parallel_map(&items, 8, |x| x * x);
        assert_eq!(seq, par);
        assert_eq!(par[7], 49);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn parallel_map_zero_threads_is_sequential() {
        let items: Vec<i32> = (0..10).collect();
        assert_eq!(parallel_map(&items, 0, |x| x + 1), (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_mut_mutates_in_place_and_preserves_order() {
        let run = |threads: usize| {
            let mut items: Vec<i64> = (0..101).collect();
            let out = parallel_map_mut(
                &mut items,
                threads,
                || 10i64,
                |ctx, x| {
                    *x += *ctx;
                    *x * 2
                },
            );
            (items, out)
        };
        let (seq_items, seq_out) = run(1);
        assert_eq!(seq_items, (10..111).collect::<Vec<_>>());
        assert_eq!(seq_out[3], 26);
        for threads in [0, 2, 3, 8, 64] {
            let (items, out) = run(threads);
            assert_eq!(items, seq_items, "threads {threads}");
            assert_eq!(out, seq_out, "threads {threads}");
        }
    }

    #[test]
    fn parallel_map_mut_empty_and_single() {
        let mut empty: Vec<i32> = vec![];
        assert!(parallel_map_mut(&mut empty, 4, || (), |_, x| *x).is_empty());
        let mut one = [5];
        assert_eq!(parallel_map_mut(&mut one, 4, || (), |_, x| *x + 1), vec![6]);
        assert_eq!(one, [5]);
    }

    #[test]
    fn parallel_map_mut_init_runs_once_per_worker() {
        // With a unit context and a pure `f`, thread count cannot change
        // results; with a counting context, each worker sees a fresh one.
        let mut items: Vec<u64> = (0..20).collect();
        let out = parallel_map_mut(
            &mut items,
            4,
            || 0u64,
            |seen, x| {
                *seen += 1;
                *x + *seen
            },
        );
        // Sequential reference: each chunk restarts its counter at 1.
        let chunk = 20usize.div_ceil(4);
        let expect: Vec<u64> = (0..20u64).map(|i| i + (i as usize % chunk) as u64 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_uneven_chunks_preserve_order() {
        // 7 items over 3 workers: chunk sizes 3/3/1 — the tail chunk must
        // land in the right slots.
        let items: Vec<usize> = (0..7).collect();
        assert_eq!(parallel_map(&items, 3, |x| x * 2), vec![0, 2, 4, 6, 8, 10, 12]);
        // And a larger stress mix with a prime count.
        let big: Vec<i64> = (0..101).collect();
        assert_eq!(parallel_map(&big, 16, |x| -x), (0..101).map(|x| -x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_panic_in_worker_propagates() {
        let items: Vec<i32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |x| {
                if *x == 9 {
                    panic!("worker exploded on {x}");
                }
                *x
            })
        });
        assert!(result.is_err(), "panic inside a worker must reach the caller");
    }

    #[test]
    fn parallel_map_panic_in_sequential_path_propagates() {
        let items = [1, 2];
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 1, |x| {
                if *x == 2 {
                    panic!("sequential path panic");
                }
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallel_map_with_context_persists_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<i64> = (0..40).collect();
        let inits = AtomicUsize::new(0);
        // Each worker's context counts the items it has seen; the final
        // values are unobservable here, but init must run once per worker,
        // not once per item.
        let out = parallel_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, x| {
                *seen += 1;
                x * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert!(inits.load(Ordering::SeqCst) <= 4, "init ran per item, not per worker");
    }

    #[test]
    fn parallel_map_with_sequential_fallback_single_context() {
        let items: Vec<i32> = (0..5).collect();
        // A single context threads through all items in order.
        let out = parallel_map_with(
            &items,
            1,
            || 0i32,
            |acc, x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    fn farm_games(count: usize) -> Vec<SubsidyGame> {
        use crate::scenarios::random_specs;
        use subcomp_model::aggregation::build_system;
        (0..count)
            .map(|k| {
                let n = 2 + k % 4;
                let sys = build_system(&random_specs(n, 100 + k as u64), 1.0).unwrap();
                SubsidyGame::new(sys, 0.4 + 0.05 * (k % 5) as f64, 0.8).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_warm_start_matches_independent_cold_solves() {
        let games = farm_games(12);
        let batch = BatchSolver::default().with_block(4).with_threads(2);
        let results = batch.solve_games(&games);
        assert_eq!(results.len(), games.len());
        for (game, result) in games.iter().zip(&results) {
            let warm = result.as_ref().expect("batch solve converged");
            assert!(warm.converged);
            let cold = batch.solver.solve(game).unwrap();
            for i in 0..game.n() {
                assert!(
                    (warm.subsidies[i] - cold.subsidies[i]).abs() < 1e-7,
                    "warm-started batch result diverged from cold solve at CP {i}"
                );
            }
        }
    }

    #[test]
    fn batch_results_bit_identical_across_thread_counts() {
        let games = farm_games(17); // deliberately not a multiple of the block
        let batch = BatchSolver::default().with_block(5);
        let one = batch.clone().with_threads(1).solve_games(&games);
        let eight = batch.with_threads(8).solve_games(&games);
        for (a, b) in one.iter().zip(&eight) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            // Bit-exact, not merely close: the warm chains depend only on
            // the block structure, never on worker assignment.
            assert_eq!(a.subsidies, b.subsidies);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        }
    }

    #[test]
    fn batch_cold_mode_is_plain_solve() {
        let games = farm_games(6);
        let batch = BatchSolver::default().cold().with_block(3).with_threads(2);
        for (game, result) in games.iter().zip(batch.solve_games(&games)) {
            let batched = result.unwrap();
            let direct = batch.solver.solve(game).unwrap();
            assert_eq!(batched.subsidies, direct.subsidies);
            assert_eq!(batched.iterations, direct.iterations);
        }
    }

    #[test]
    fn batch_error_breaks_chain_without_poisoning_batch() {
        let games = farm_games(6);
        let batch = BatchSolver::default().with_block(6).with_threads(1);
        // Item 2 fails to build; its neighbours must still solve, and the
        // item after the failure starts a fresh (cold) chain.
        let results = batch.run(
            &[0usize, 1, 2, 3, 4, 5],
            |&k| {
                if k == 2 {
                    Err(subcomp_num::NumError::Empty { what: "synthetic build failure" })
                } else {
                    Ok(games[k].clone())
                }
            },
            |_, ws, stats| (ws.subsidies().to_vec(), stats.converged),
        );
        assert!(results[2].is_err());
        for (k, r) in results.iter().enumerate() {
            if k != 2 {
                assert!(r.as_ref().unwrap().1, "item {k} should converge");
            }
        }
    }

    #[test]
    fn batch_panic_in_worker_propagates() {
        let games = farm_games(8);
        let batch = BatchSolver::default().with_block(2).with_threads(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.run(
                &[0usize, 1, 2, 3, 4, 5, 6, 7],
                |&k| Ok(games[k].clone()),
                |_, _, _| panic!("summarize exploded mid-batch"),
            )
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn lane_mode_is_bit_identical_to_scalar_threshold_solves() {
        let games = farm_games(13); // mixed n ∈ {2..5}, not a lane multiple
        let lanes = BatchSolver::default().with_lanes(4).with_threads(3);
        let results = lanes.solve_games(&games);
        let reference = NashSolver::default().with_threshold_br(true);
        for (game, result) in games.iter().zip(&results) {
            let got = result.as_ref().expect("lane batch converged");
            let want = reference.solve(game).unwrap();
            assert_eq!(got.subsidies, want.subsidies, "lane result diverged");
            assert_eq!(got.iterations, want.iterations);
            assert_eq!(got.residual.to_bits(), want.residual.to_bits());
        }
    }

    #[test]
    fn lane_mode_build_failures_keep_their_slots() {
        let games = farm_games(6);
        let batch = BatchSolver::default().with_lanes(2).with_threads(2);
        let results = batch.run(
            &[0usize, 1, 2, 3, 4, 5],
            |&k| {
                if k == 3 {
                    Err(subcomp_num::NumError::Empty { what: "synthetic build failure" })
                } else {
                    Ok(games[k].clone())
                }
            },
            |_, ws, stats| (ws.subsidies().to_vec(), stats.converged),
        );
        assert!(results[3].is_err());
        for (k, r) in results.iter().enumerate() {
            if k != 3 {
                assert!(r.as_ref().unwrap().1, "item {k} should converge");
            }
        }
    }

    #[test]
    fn warm_sweep_matches_cold_solves() {
        let sys = section5_system();
        let solver = NashSolver::default().with_tol(1e-8);
        let prices = [0.3, 0.4, 0.5];
        let sweep = equilibrium_price_sweep(&sys, 0.6, &prices, &solver).unwrap();
        assert_eq!(sweep.len(), 3);
        for pt in &sweep {
            let game = SubsidyGame::new(sys.clone(), pt.p, 0.6).unwrap();
            let cold = solver.solve(&game).unwrap();
            for i in 0..8 {
                assert!(
                    (pt.equilibrium.subsidies[i] - cold.subsidies[i]).abs() < 1e-5,
                    "p = {}, CP {i}",
                    pt.p
                );
            }
        }
    }

    #[test]
    fn sweep_points_keep_prices() {
        let sys = section5_system();
        let solver = NashSolver::default().with_tol(1e-7);
        let prices = [0.2, 0.9];
        let sweep = equilibrium_price_sweep(&sys, 0.3, &prices, &solver).unwrap();
        assert_eq!(sweep[0].p, 0.2);
        assert_eq!(sweep[1].p, 0.9);
    }
}
